//! The hospital's static world: users, teams, services, department codes.

use crate::config::SynthConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A user's job within the hospital.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Physician on a care team.
    Doctor,
    /// Nurse on a care team.
    Nurse,
    /// Medical student rotating through a care team.
    MedStudent,
    /// Consult-service staff (radiology / pathology / pharmacy).
    ConsultStaff,
    /// Hospital-wide assist staff with no recorded reason for accesses.
    Float,
}

/// Static metadata for one user.
#[derive(Debug, Clone)]
pub struct UserMeta {
    /// 0-based user index (database ids are `index + 1`).
    pub index: usize,
    /// Department code, e.g. `"UMHS Pediatrics (Physicians)"` — note that
    /// doctors and nurses of the *same* team carry different codes, the
    /// paper's motivation for inferring collaborative groups.
    pub department: String,
    /// Job role.
    pub role: Role,
    /// Care team index, for team roles.
    pub team: Option<usize>,
    /// Consult service index, for consult staff.
    pub service: Option<usize>,
}

/// A clinical care team: the ground-truth collaborative group.
#[derive(Debug, Clone)]
pub struct Team {
    /// Specialty name, e.g. `"Cancer Center"`.
    pub specialty: String,
    /// User indexes of the team's doctors.
    pub doctors: Vec<usize>,
    /// User indexes of the team's nurses.
    pub nurses: Vec<usize>,
    /// User indexes of medical students currently rotating here.
    pub students: Vec<usize>,
}

impl Team {
    /// All members (doctors, nurses, students).
    pub fn members(&self) -> impl Iterator<Item = usize> + '_ {
        self.doctors
            .iter()
            .chain(&self.nurses)
            .chain(&self.students)
            .copied()
    }
}

/// The consult services, in fixed order.
pub const SERVICES: [&str; 3] = ["Radiology", "Pathology", "Pharmacy"];
/// Index of the radiology service in [`SERVICES`].
pub const SERVICE_RADIOLOGY: usize = 0;
/// Index of the pathology (labs) service.
pub const SERVICE_PATHOLOGY: usize = 1;
/// Index of the pharmacy service.
pub const SERVICE_PHARMACY: usize = 2;

/// The hospital's static structure.
#[derive(Debug, Clone)]
pub struct World {
    /// All users; `users[i].index == i`.
    pub users: Vec<UserMeta>,
    /// Care teams.
    pub teams: Vec<Team>,
    /// Consult-service member indexes, parallel to [`SERVICES`].
    pub service_members: Vec<Vec<usize>>,
    /// Float-pool member indexes.
    pub float_members: Vec<usize>,
    /// `patient_team[p]` is patient `p`'s home care team.
    pub patient_team: Vec<usize>,
}

impl World {
    /// Builds the static world deterministically from the config.
    pub fn generate(config: &SynthConfig) -> World {
        let mut users: Vec<UserMeta> = Vec::new();
        let mut teams: Vec<Team> = Vec::new();
        let push_user =
            |users: &mut Vec<UserMeta>, department: String, role, team, service| -> usize {
                let index = users.len();
                users.push(UserMeta {
                    index,
                    department,
                    role,
                    team,
                    service,
                });
                index
            };

        for t in 0..config.n_teams {
            let base = &config.specialties[t % config.specialties.len()];
            let specialty = if t < config.specialties.len() {
                base.clone()
            } else {
                format!("{base} {}", t / config.specialties.len() + 1)
            };
            let mut team = Team {
                specialty: specialty.clone(),
                doctors: Vec::with_capacity(config.doctors_per_team),
                nurses: Vec::with_capacity(config.nurses_per_team),
                students: Vec::new(),
            };
            for _ in 0..config.doctors_per_team {
                let dept = format!("UMHS {specialty} (Physicians)");
                team.doctors
                    .push(push_user(&mut users, dept, Role::Doctor, Some(t), None));
            }
            for _ in 0..config.nurses_per_team {
                let dept = format!("Nursing - {specialty}");
                team.nurses
                    .push(push_user(&mut users, dept, Role::Nurse, Some(t), None));
            }
            teams.push(team);
        }

        let mut service_members: Vec<Vec<usize>> = Vec::with_capacity(SERVICES.len());
        for (s, name) in SERVICES.iter().enumerate() {
            let mut members = Vec::with_capacity(config.consult_service_size);
            for _ in 0..config.consult_service_size {
                members.push(push_user(
                    &mut users,
                    (*name).to_string(),
                    Role::ConsultStaff,
                    None,
                    Some(s),
                ));
            }
            service_members.push(members);
        }

        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0x9E37_79B9));
        for s in 0..config.n_med_students {
            let team = if config.n_teams == 0 {
                0
            } else {
                rng.gen_range(0..config.n_teams)
            };
            let idx = push_user(
                &mut users,
                "Medical Students".to_string(),
                Role::MedStudent,
                Some(team),
                None,
            );
            if let Some(t) = teams.get_mut(team) {
                t.students.push(idx);
            }
            let _ = s;
        }

        let mut float_members = Vec::with_capacity(config.n_float_users);
        for f in 0..config.n_float_users {
            let dept = if f % 2 == 0 {
                "Nursing - Vascular Access Service"
            } else {
                "Anesthesiology"
            };
            float_members.push(push_user(
                &mut users,
                dept.to_string(),
                Role::Float,
                None,
                None,
            ));
        }

        let patient_team = (0..config.n_patients)
            .map(|_| rng.gen_range(0..config.n_teams.max(1)))
            .collect();

        World {
            users,
            teams,
            service_members,
            float_members,
            patient_team,
        }
    }

    /// Total user count.
    pub fn n_users(&self) -> usize {
        self.users.len()
    }

    /// Number of patients.
    pub fn n_patients(&self) -> usize {
        self.patient_team.len()
    }

    /// Distinct department codes, sorted.
    pub fn departments(&self) -> Vec<&str> {
        let mut deps: Vec<&str> = self.users.iter().map(|u| u.department.as_str()).collect();
        deps.sort_unstable();
        deps.dedup();
        deps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_has_expected_population() {
        let config = SynthConfig::tiny();
        let w = World::generate(&config);
        let expected = config.n_teams * (config.doctors_per_team + config.nurses_per_team)
            + SERVICES.len() * config.consult_service_size
            + config.n_med_students
            + config.n_float_users;
        assert_eq!(w.n_users(), expected);
        assert_eq!(w.n_patients(), config.n_patients);
        // Indexes are self-consistent.
        for (i, u) in w.users.iter().enumerate() {
            assert_eq!(u.index, i);
        }
    }

    #[test]
    fn doctors_and_nurses_have_split_department_codes() {
        let w = World::generate(&SynthConfig::tiny());
        let team = &w.teams[0];
        let doc_dept = &w.users[team.doctors[0]].department;
        let nurse_dept = &w.users[team.nurses[0]].department;
        assert_ne!(doc_dept, nurse_dept);
        assert!(doc_dept.contains("(Physicians)"));
        assert!(nurse_dept.starts_with("Nursing - "));
        // But both carry the specialty name.
        assert!(doc_dept.contains(&team.specialty));
        assert!(nurse_dept.contains(&team.specialty));
    }

    #[test]
    fn students_rotate_into_teams() {
        let config = SynthConfig::tiny();
        let w = World::generate(&config);
        let placed: usize = w.teams.iter().map(|t| t.students.len()).sum();
        assert_eq!(placed, config.n_med_students);
        for u in w.users.iter().filter(|u| u.role == Role::MedStudent) {
            assert_eq!(u.department, "Medical Students");
            assert!(u.team.is_some());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let config = SynthConfig::tiny();
        let a = World::generate(&config);
        let b = World::generate(&config);
        assert_eq!(a.patient_team, b.patient_team);
        assert_eq!(a.n_users(), b.n_users());
    }

    #[test]
    fn every_patient_has_a_team() {
        let w = World::generate(&SynthConfig::tiny());
        for &t in &w.patient_team {
            assert!(t < w.teams.len());
        }
    }

    #[test]
    fn department_codes_are_plentiful() {
        let w = World::generate(&SynthConfig::tiny());
        // 2 per team + 3 services + students + 2 float codes.
        assert!(w.departments().len() >= 2 * 3 + 3 + 1 + 2);
    }

    #[test]
    fn extra_teams_get_disambiguated_names() {
        let mut config = SynthConfig::tiny();
        config.n_teams = config.specialties.len() + 2;
        let w = World::generate(&config);
        let names: Vec<&str> = w.teams.iter().map(|t| t.specialty.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "team names must be unique");
    }
}
