//! Access-log generation: who touches which record, and why.

use crate::config::SynthConfig;
use crate::events::{Event, EventKind};
use crate::world::World;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Ground-truth reason for one access. Never visible to the miner; used to
/// validate the generator and to analyze which mechanisms each template
/// recovers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessReason {
    /// The appointment/visit doctor opened the record.
    PrimaryCare,
    /// A team nurse or rotating student opened it because the team is
    /// treating the patient (nothing in the database links them directly —
    /// the paper's "missing data" case).
    CareTeam,
    /// A document author opened the record.
    DocumentAuthor,
    /// Consult staff fulfilled an order (lab result, radiology read,
    /// pharmacy sign-off).
    ConsultOrder,
    /// A team nurse administered an ordered medication.
    MedicationAdmin,
    /// The ordering doctor re-checked results.
    OrderFollowup,
    /// The same user re-opened a record they had opened before.
    Repeat,
    /// Hospital-wide assist staff (vascular access, anesthesiology) — no
    /// recorded reason exists.
    FloatAssist,
    /// Injected misuse (snooping) for detection experiments.
    Snoop,
}

impl AccessReason {
    /// Whether the database is *supposed* to contain an explanation path
    /// for this access (given complete data and collaborative groups).
    pub fn expected_explainable(self) -> bool {
        !matches!(self, AccessReason::FloatAssist | AccessReason::Snoop)
    }
}

/// One generated access, pre-log-materialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Access {
    /// 0-based user index.
    pub user: usize,
    /// 0-based patient index.
    pub patient: usize,
    /// 1-based day.
    pub day: u32,
    /// Minute within the day.
    pub minute: u32,
    /// Ground truth.
    pub reason: AccessReason,
}

impl Access {
    /// Minutes since window start.
    pub fn timestamp(&self) -> i64 {
        i64::from(self.day) * 24 * 60 + i64::from(self.minute)
    }
}

/// Generates the full access stream for the window: event-driven accesses,
/// float-pool noise, injected snoops, then geometric repeat chains; sorted
/// chronologically.
pub fn generate_accesses(config: &SynthConfig, world: &World, events: &[Event]) -> Vec<Access> {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0xC2B2_AE35));
    let mut accesses: Vec<Access> = Vec::with_capacity(events.len() * 4);

    let push = |accesses: &mut Vec<Access>,
                user: usize,
                patient: usize,
                day: u32,
                minute: u32,
                reason: AccessReason| {
        accesses.push(Access {
            user,
            patient,
            day: day.min(config.days),
            minute: minute.min(24 * 60 - 1),
            reason,
        });
    };

    for e in events {
        match &e.kind {
            EventKind::Appointment { doctor } | EventKind::Visit { doctor } => {
                // The doctor works the record around the encounter.
                push(
                    &mut accesses,
                    *doctor,
                    e.patient,
                    e.day,
                    e.minute.saturating_sub(rng.gen_range(0..60)),
                    AccessReason::PrimaryCare,
                );
                // Team nurses prep/men the encounter; the appointment row
                // references only the doctor.
                let team = &world.teams[world.patient_team[e.patient]];
                if !team.nurses.is_empty() && config.team_nurse_accesses > 0 {
                    let k = rng.gen_range(1..=config.team_nurse_accesses.min(team.nurses.len()));
                    let mut nurses = team.nurses.clone();
                    nurses.shuffle(&mut rng);
                    for &nurse in nurses.iter().take(k) {
                        push(
                            &mut accesses,
                            nurse,
                            e.patient,
                            e.day,
                            e.minute.saturating_sub(rng.gen_range(0..120)),
                            AccessReason::CareTeam,
                        );
                    }
                }
                for &student in &team.students {
                    if rng.gen_bool(config.p_student_access) {
                        push(
                            &mut accesses,
                            student,
                            e.patient,
                            e.day,
                            e.minute + rng.gen_range(0..90),
                            AccessReason::CareTeam,
                        );
                    }
                }
            }
            EventKind::Document { author } => {
                push(
                    &mut accesses,
                    *author,
                    e.patient,
                    e.day,
                    e.minute,
                    AccessReason::DocumentAuthor,
                );
            }
            EventKind::Lab { order, result } => {
                push(
                    &mut accesses,
                    *result,
                    e.patient,
                    e.day,
                    e.minute + rng.gen_range(0..120),
                    AccessReason::ConsultOrder,
                );
                if rng.gen_bool(config.p_order_followup) {
                    push(
                        &mut accesses,
                        *order,
                        e.patient,
                        (e.day + 1).min(config.days),
                        rng.gen_range(8 * 60..17 * 60),
                        AccessReason::OrderFollowup,
                    );
                }
            }
            EventKind::Medication { order, sign, admin } => {
                push(
                    &mut accesses,
                    *sign,
                    e.patient,
                    e.day,
                    e.minute + rng.gen_range(0..60),
                    AccessReason::ConsultOrder,
                );
                push(
                    &mut accesses,
                    *admin,
                    e.patient,
                    e.day,
                    e.minute + rng.gen_range(60..240),
                    AccessReason::MedicationAdmin,
                );
                if rng.gen_bool(config.p_order_followup / 2.0) {
                    push(
                        &mut accesses,
                        *order,
                        e.patient,
                        (e.day + 1).min(config.days),
                        rng.gen_range(8 * 60..17 * 60),
                        AccessReason::OrderFollowup,
                    );
                }
            }
            EventKind::Radiology { order, read } => {
                push(
                    &mut accesses,
                    *read,
                    e.patient,
                    e.day,
                    e.minute + rng.gen_range(0..180),
                    AccessReason::ConsultOrder,
                );
                if rng.gen_bool(config.p_order_followup) {
                    push(
                        &mut accesses,
                        *order,
                        e.patient,
                        (e.day + 1).min(config.days),
                        rng.gen_range(8 * 60..17 * 60),
                        AccessReason::OrderFollowup,
                    );
                }
            }
        }
    }

    // Float-pool noise: hospital-wide assists with no recorded reason.
    if !world.float_members.is_empty() {
        for _ in 0..config.n_float_accesses {
            let user = world.float_members[rng.gen_range(0..world.float_members.len())];
            let patient = rng.gen_range(0..config.n_patients);
            push(
                &mut accesses,
                user,
                patient,
                rng.gen_range(1..=config.days),
                rng.gen_range(0..24 * 60),
                AccessReason::FloatAssist,
            );
        }
    }

    // Injected snooping: a random user peeks at a record they have no
    // relationship with (the VIP scenario).
    for _ in 0..config.n_snoop_accesses {
        let user = rng.gen_range(0..world.n_users());
        let patient = rng.gen_range(0..config.n_patients);
        push(
            &mut accesses,
            user,
            patient,
            rng.gen_range(1..=config.days),
            rng.gen_range(0..24 * 60),
            AccessReason::Snoop,
        );
    }

    // Repeat chains: each access spawns another by the same user at a later
    // time with probability p_repeat, repeatedly ("a majority of the
    // accesses can be categorized as repeat accesses").
    let mut i = 0;
    while i < accesses.len() {
        let a = accesses[i].clone();
        if rng.gen_bool(config.p_repeat) {
            let bump_day = u32::from(rng.gen_bool(0.4));
            let day = (a.day + bump_day).min(config.days);
            let minute = if bump_day == 0 {
                (a.minute + rng.gen_range(10..240)).min(24 * 60 - 1)
            } else {
                rng.gen_range(0..24 * 60)
            };
            accesses.push(Access {
                user: a.user,
                patient: a.patient,
                day,
                minute,
                reason: AccessReason::Repeat,
            });
        }
        i += 1;
    }

    accesses.sort_by_key(|a| (a.timestamp(), a.user, a.patient));
    accesses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::generate_events;

    fn setup() -> (SynthConfig, World, Vec<Access>) {
        let config = SynthConfig::tiny();
        let world = World::generate(&config);
        let events = generate_events(&config, &world);
        let accesses = generate_accesses(&config, &world, &events);
        (config, world, accesses)
    }

    #[test]
    fn accesses_are_sorted_and_deterministic() {
        let (config, world, accesses) = setup();
        assert!(!accesses.is_empty());
        for w in accesses.windows(2) {
            assert!(w[0].timestamp() <= w[1].timestamp());
        }
        let events = generate_events(&config, &world);
        assert_eq!(accesses, generate_accesses(&config, &world, &events));
    }

    #[test]
    fn repeats_form_a_large_share() {
        let (_, _, accesses) = setup();
        let repeats = accesses
            .iter()
            .filter(|a| a.reason == AccessReason::Repeat)
            .count();
        let frac = repeats as f64 / accesses.len() as f64;
        assert!(frac > 0.2, "repeat fraction {frac} too low");
    }

    #[test]
    fn floats_access_random_patients() {
        let (_, world, accesses) = setup();
        let float_accesses: Vec<_> = accesses
            .iter()
            .filter(|a| a.reason == AccessReason::FloatAssist)
            .collect();
        assert!(!float_accesses.is_empty());
        for a in float_accesses {
            assert!(world.float_members.contains(&a.user));
        }
    }

    #[test]
    fn bounds_are_respected() {
        let (config, world, accesses) = setup();
        for a in &accesses {
            assert!(a.user < world.n_users());
            assert!(a.patient < config.n_patients);
            assert!((1..=config.days).contains(&a.day));
            assert!(a.minute < 24 * 60);
        }
    }

    #[test]
    fn explainability_expectation_matches_reason() {
        assert!(AccessReason::PrimaryCare.expected_explainable());
        assert!(AccessReason::CareTeam.expected_explainable());
        assert!(!AccessReason::FloatAssist.expected_explainable());
        assert!(!AccessReason::Snoop.expected_explainable());
    }

    #[test]
    fn snoops_appear_when_requested() {
        let mut config = SynthConfig::tiny();
        config.n_snoop_accesses = 5;
        let world = World::generate(&config);
        let events = generate_events(&config, &world);
        let accesses = generate_accesses(&config, &world, &events);
        let snoops = accesses
            .iter()
            .filter(|a| a.reason == AccessReason::Snoop)
            .count();
        assert_eq!(snoops, 5);
    }
}
