//! Property-based tests of the path algebra and canonicalization, over
//! randomly shaped (but well-typed) schemas and paths.

use eba_core::canonical::canonical_key;
use eba_core::edge::{Edge, EdgeKind};
use eba_core::{Direction, LogSpec, Path};
use eba_relational::{DataType, Database, TableId};
use proptest::prelude::*;

/// A random chain specification: how many hop tables, and per hop which
/// column enters/exits (0 or 1).
#[derive(Debug, Clone)]
struct ChainShape {
    hops: Vec<(u8, u8)>, // (enter col, exit col) of each hop table
}

fn chain_shape() -> impl Strategy<Value = ChainShape> {
    prop::collection::vec((0u8..2, 0u8..2), 1..5).prop_map(|hops| ChainShape { hops })
}

/// Builds a database with `Log` and one table per hop (`H0`, `H1`, ...),
/// each with two Int columns `A`, `B`.
fn build_db(shape: &ChainShape) -> (Database, LogSpec, Vec<TableId>) {
    let mut db = Database::new();
    db.create_table(
        "Log",
        &[
            ("Lid", DataType::Int),
            ("User", DataType::Int),
            ("Patient", DataType::Int),
        ],
    )
    .unwrap();
    let mut hops = Vec::new();
    for i in 0..shape.hops.len() {
        let t = db
            .create_table(
                &format!("H{i}"),
                &[("A", DataType::Int), ("B", DataType::Int)],
            )
            .unwrap();
        hops.push(t);
    }
    let spec = LogSpec::conventional(&db).unwrap();
    (db, spec, hops)
}

fn col(c: u8) -> usize {
    c as usize
}

/// Builds the closed path Log.Patient → H0(enter→exit) → H1(...) → Log.User.
fn build_path(
    spec: &LogSpec,
    hops: &[TableId],
    shape: &ChainShape,
) -> Result<Path, eba_core::PathError> {
    let mut path = Path::seed(
        spec,
        Direction::Forward,
        Edge {
            from: spec.start_attr(),
            to: eba_relational::AttrRef::new(hops[0], col(shape.hops[0].0)),
            kind: EdgeKind::ForeignKey,
        },
    )?;
    for i in 1..hops.len() {
        path = path.extended(Edge {
            from: eba_relational::AttrRef::new(hops[i - 1], col(shape.hops[i - 1].1)),
            to: eba_relational::AttrRef::new(hops[i], col(shape.hops[i].0)),
            kind: EdgeKind::ForeignKey,
        })?;
    }
    let last = hops.len() - 1;
    path.closed_by(
        Edge {
            from: eba_relational::AttrRef::new(hops[last], col(shape.hops[last].1)),
            to: spec.end_attr(),
            kind: EdgeKind::ForeignKey,
        },
        spec,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn closed_paths_reverse_losslessly(shape in chain_shape()) {
        let (_, spec, hops) = build_db(&shape);
        let path = build_path(&spec, &hops, &shape).unwrap();
        let rev = path.reversed().unwrap();
        // Same length, same closedness, double reversal is identity.
        prop_assert_eq!(rev.length(), path.length());
        prop_assert!(rev.is_closed());
        let double = rev.reversed().unwrap();
        prop_assert_eq!(double.edges(), path.edges());
        // Tuple variables appear in reverse order.
        let mut tv = path.tuple_vars();
        tv.reverse();
        prop_assert_eq!(rev.tuple_vars(), tv);
    }

    #[test]
    fn canonical_key_invariant_under_reversal(shape in chain_shape()) {
        let (_, spec, hops) = build_db(&shape);
        let path = build_path(&spec, &hops, &shape).unwrap();
        let rev = path.reversed().unwrap();
        prop_assert_eq!(canonical_key(&path, &spec), canonical_key(&rev, &spec));
    }

    #[test]
    fn distinct_shapes_have_distinct_keys(a in chain_shape(), b in chain_shape()) {
        // Two chains over the *same ordered tables* with different
        // (enter, exit) choices or lengths are different queries and must
        // not collide: the key encodes tables, columns and canonical alias
        // positions. (Traversal *direction* is deliberately folded — see
        // `canonical_key_invariant_under_reversal` — but a reversed
        // traversal also reverses the table sequence, so it cannot be
        // confused with a different shape over the forward sequence.)
        let longest = if a.hops.len() >= b.hops.len() { &a } else { &b };
        let (_, spec, hops) = build_db(longest);
        let pa = build_path(&spec, &hops[..a.hops.len()], &a).unwrap();
        let pb = build_path(&spec, &hops[..b.hops.len()], &b).unwrap();
        if a.hops == b.hops {
            prop_assert_eq!(canonical_key(&pa, &spec), canonical_key(&pb, &spec));
        } else {
            prop_assert_ne!(canonical_key(&pa, &spec), canonical_key(&pb, &spec));
        }
    }

    #[test]
    fn table_count_bounds(shape in chain_shape()) {
        let (_, spec, hops) = build_db(&shape);
        let path = build_path(&spec, &hops, &shape).unwrap();
        let n = path.table_count(spec.table, &[]);
        // Anchor + distinct hop tables.
        prop_assert_eq!(n, 1 + hops.len());
        // Exempting every hop table leaves just the anchor.
        prop_assert_eq!(path.table_count(spec.table, &hops), 1);
        // Restriction check is consistent.
        prop_assert!(path.is_restricted(spec.table, path.length(), n, &[]));
        prop_assert!(!path.is_restricted(spec.table, path.length() - 1, n, &[]));
    }

    #[test]
    fn lowering_shape_is_consistent(shape in chain_shape()) {
        let (db, spec, hops) = build_db(&shape);
        let path = build_path(&spec, &hops, &shape).unwrap();
        let q = path.to_chain_query(&spec);
        prop_assert_eq!(q.steps.len(), path.tuple_var_count());
        prop_assert_eq!(q.close_col, Some(spec.user_col));
        prop_assert_eq!(q.start_col, spec.patient_col);
        // Lowered steps reference real tables/columns.
        prop_assert!(q.validate(&db).is_ok());
        // Step enter columns match the edges' target columns.
        for (step, i) in q.steps.iter().zip(0..) {
            prop_assert_eq!(step.table, hops[i]);
            prop_assert_eq!(step.enter_col, col(shape.hops[i].0));
        }
    }

    #[test]
    fn sql_mentions_every_tuple_variable(shape in chain_shape()) {
        let (db, spec, hops) = build_db(&shape);
        let path = build_path(&spec, &hops, &shape).unwrap();
        let sql = eba_core::sql::template_sql(&db, &spec, &path);
        for i in 1..=hops.len() {
            prop_assert!(sql.contains(&format!("T{i}")), "missing T{i} in {sql}");
        }
        prop_assert!(sql.contains("FROM Log L"));
        // One join condition per edge.
        prop_assert_eq!(sql.matches(" = ").count(), path.length());
    }
}
