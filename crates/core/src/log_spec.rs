//! Where the access log lives and which of its columns play which role.

use eba_relational::{AttrRef, CmpOp, ColId, Database, Error, Result, TableId, Value};

/// Identifies the access-log table and its role columns.
///
/// The paper's log schema is `Log(Lid, Date, User, Patient, Action)`; only
/// the first four matter to the framework. `anchor_filters` restricts which
/// log rows the system is asked to explain (the experiments mine on "first
/// accesses of days 1–6" and test on day 7; those subsets are expressed as
/// filters over derived columns such as `Day` and `IsFirst`).
#[derive(Debug, Clone, PartialEq)]
pub struct LogSpec {
    /// The log table.
    pub table: TableId,
    /// Log-record id column (counted distinctly for support).
    pub lid_col: ColId,
    /// The data that was accessed (the paper's `Log.Patient`) — the start
    /// attribute of every explanation path.
    pub patient_col: ColId,
    /// The user who accessed the data (`Log.User`) — the end attribute.
    pub user_col: ColId,
    /// Conjunctive filters restricting the anchor rows.
    pub anchor_filters: Vec<(ColId, CmpOp, Value)>,
}

impl LogSpec {
    /// Resolves a spec from a table named `Log` with columns `Lid`, `User`
    /// and `Patient` (the CareWeb shape).
    pub fn conventional(db: &Database) -> Result<Self> {
        let table = db.table_id("Log")?;
        let schema = db.table(table).schema();
        let col = |name: &str| -> Result<ColId> {
            schema.col(name).ok_or_else(|| Error::UnknownColumn {
                table: "Log".into(),
                column: name.into(),
            })
        };
        Ok(LogSpec {
            table,
            lid_col: col("Lid")?,
            patient_col: col("Patient")?,
            user_col: col("User")?,
            anchor_filters: Vec::new(),
        })
    }

    /// The start attribute (`Log.Patient`).
    pub fn start_attr(&self) -> AttrRef {
        AttrRef::new(self.table, self.patient_col)
    }

    /// The end attribute (`Log.User`).
    pub fn end_attr(&self) -> AttrRef {
        AttrRef::new(self.table, self.user_col)
    }

    /// A copy with different anchor filters.
    pub fn with_filters(&self, filters: Vec<(ColId, CmpOp, Value)>) -> Self {
        LogSpec {
            anchor_filters: filters,
            ..self.clone()
        }
    }

    /// Number of distinct anchor log ids (the denominator of support
    /// fractions and recall).
    pub fn anchor_lid_count(&self, db: &Database) -> usize {
        let log = db.table(self.table);
        let mut lids = std::collections::HashSet::new();
        for (_, row) in log.iter() {
            if self
                .anchor_filters
                .iter()
                .all(|(col, op, v)| op.eval(&row[*col], v))
            {
                lids.insert(row[self.lid_col]);
            }
        }
        lids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_relational::DataType;

    fn db() -> Database {
        let mut db = Database::new();
        let log = db
            .create_table(
                "Log",
                &[
                    ("Lid", DataType::Int),
                    ("Date", DataType::Date),
                    ("User", DataType::Int),
                    ("Patient", DataType::Int),
                ],
            )
            .unwrap();
        for i in 0..4i64 {
            db.insert(
                log,
                vec![
                    Value::Int(i),
                    Value::Date(i * 100),
                    Value::Int(10 + i),
                    Value::Int(100 + i),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn conventional_resolves_roles() {
        let db = db();
        let spec = LogSpec::conventional(&db).unwrap();
        assert_eq!(spec.lid_col, 0);
        assert_eq!(spec.user_col, 2);
        assert_eq!(spec.patient_col, 3);
        assert_eq!(db.attr_name(spec.start_attr()), "Log.Patient");
        assert_eq!(db.attr_name(spec.end_attr()), "Log.User");
    }

    #[test]
    fn conventional_fails_without_log_table() {
        let db = Database::new();
        assert!(LogSpec::conventional(&db).is_err());
    }

    #[test]
    fn anchor_count_respects_filters() {
        let db = db();
        let spec = LogSpec::conventional(&db).unwrap();
        assert_eq!(spec.anchor_lid_count(&db), 4);
        let filtered = spec.with_filters(vec![(1, CmpOp::Ge, Value::Date(200))]);
        assert_eq!(filtered.anchor_lid_count(&db), 2);
    }
}
