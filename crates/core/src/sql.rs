//! Rendering paths as the paper's stylized SQL.
//!
//! Templates are *presented* to the administrator (and in this repo, to the
//! reader) as the SQL queries of Def. 1; evaluation itself goes through
//! [`eba_relational::ChainQuery`]. Two forms are rendered: the template
//! query (`SELECT L.Lid, ...`) and the support query
//! (`SELECT COUNT(DISTINCT L.Lid) ...`, §3.2).

use crate::log_spec::LogSpec;
use crate::path::{Direction, Path};
use eba_relational::{Database, Rhs, Value};
use std::fmt::Write;

/// Alias names: the anchor is `L`, the i-th joined tuple variable `Ti`.
fn alias(i: usize) -> String {
    if i == 0 {
        "L".to_string()
    } else {
        format!("T{i}")
    }
}

fn render_value(db: &Database, v: &Value) -> String {
    match v {
        Value::Str(_) => format!("'{}'", v.display(db.pool())),
        _ => v.display(db.pool()).to_string(),
    }
}

/// Renders the `FROM` and `WHERE` clauses shared by both query forms.
fn from_where(db: &Database, spec: &LogSpec, path: &Path) -> (String, String) {
    let log_name = db.table(spec.table).name();
    let mut from = format!("{log_name} L");
    for (i, t) in path.tuple_vars().iter().enumerate() {
        let _ = write!(from, ", {} {}", db.table(*t).name(), alias(i + 1));
    }

    let n = path.length();
    let closed = path.is_closed();
    let mut conds: Vec<String> = Vec::with_capacity(n);
    for (i, e) in path.edges().iter().enumerate() {
        let from_alias = alias(i);
        let to_alias = if closed && i == n - 1 {
            alias(0)
        } else {
            alias(i + 1)
        };
        let lhs_col = db.table(e.from.table).schema().col_name(e.from.col);
        let rhs_col = db.table(e.to.table).schema().col_name(e.to.col);
        conds.push(format!("{from_alias}.{lhs_col} = {to_alias}.{rhs_col}"));
    }
    for d in path.decorations() {
        let t = path.tuple_vars()[d.alias - 1];
        let col = db.table(t).schema().col_name(d.filter.col);
        let rhs = match d.filter.rhs {
            Rhs::Const(v) => render_value(db, &v),
            Rhs::AnchorCol(c) => format!("L.{}", db.table(spec.table).schema().col_name(c)),
        };
        conds.push(format!(
            "{}.{col} {} {rhs}",
            alias(d.alias),
            d.filter.op.sql()
        ));
    }
    for (col, op, v) in &spec.anchor_filters {
        conds.push(format!(
            "L.{} {} {}",
            db.table(spec.table).schema().col_name(*col),
            op.sql(),
            render_value(db, v)
        ));
    }
    (from, conds.join("\n  AND "))
}

/// The template query: `SELECT L.Lid, L.Patient, L.User FROM ... WHERE ...`.
pub fn template_sql(db: &Database, spec: &LogSpec, path: &Path) -> String {
    let (from, wher) = from_where(db, spec, path);
    let schema = db.table(spec.table).schema();
    let lid = schema.col_name(spec.lid_col);
    let (first, second) = match path.direction() {
        Direction::Forward => (spec.patient_col, spec.user_col),
        Direction::Backward => (spec.user_col, spec.patient_col),
    };
    format!(
        "SELECT L.{lid}, L.{}, L.{}\nFROM {from}\nWHERE {wher}",
        schema.col_name(first),
        schema.col_name(second)
    )
}

/// The support query of §3.2: `SELECT COUNT(DISTINCT L.Lid) ...`.
pub fn support_sql(db: &Database, spec: &LogSpec, path: &Path) -> String {
    let (from, wher) = from_where(db, spec, path);
    let lid = db.table(spec.table).schema().col_name(spec.lid_col);
    format!("SELECT COUNT(DISTINCT L.{lid})\nFROM {from}\nWHERE {wher}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_relational::{CmpOp, DataType, StepFilter};

    fn db() -> (Database, LogSpec) {
        let mut db = Database::new();
        db.create_table(
            "Log",
            &[
                ("Lid", DataType::Int),
                ("Date", DataType::Date),
                ("User", DataType::Int),
                ("Patient", DataType::Int),
            ],
        )
        .unwrap();
        db.create_table(
            "Appointments",
            &[
                ("Patient", DataType::Int),
                ("Date", DataType::Date),
                ("Doctor", DataType::Int),
            ],
        )
        .unwrap();
        db.create_table(
            "Doctor_Info",
            &[("Doctor", DataType::Int), ("Department", DataType::Str)],
        )
        .unwrap();
        let spec = LogSpec::conventional(&db).unwrap();
        (db, spec)
    }

    #[test]
    fn template_a_sql_matches_paper_shape() {
        let (db, spec) = db();
        let p = Path::handcrafted(&db, &spec, &[("Appointments", "Patient", "Doctor")]).unwrap();
        let sql = template_sql(&db, &spec, &p);
        assert!(sql.contains("SELECT L.Lid, L.Patient, L.User"));
        assert!(sql.contains("FROM Log L, Appointments T1"));
        assert!(sql.contains("L.Patient = T1.Patient"));
        assert!(sql.contains("T1.Doctor = L.User"));
    }

    #[test]
    fn self_join_gets_two_aliases() {
        let (db, spec) = db();
        let p = Path::handcrafted(
            &db,
            &spec,
            &[
                ("Appointments", "Patient", "Doctor"),
                ("Doctor_Info", "Doctor", "Department"),
                ("Doctor_Info", "Department", "Doctor"),
            ],
        )
        .unwrap();
        let sql = template_sql(&db, &spec, &p);
        assert!(sql.contains("Doctor_Info T2, Doctor_Info T3"));
        assert!(sql.contains("T2.Department = T3.Department"));
    }

    #[test]
    fn support_sql_counts_distinct_lids() {
        let (db, spec) = db();
        let p = Path::handcrafted(&db, &spec, &[("Appointments", "Patient", "Doctor")]).unwrap();
        let sql = support_sql(&db, &spec, &p);
        assert!(sql.starts_with("SELECT COUNT(DISTINCT L.Lid)"));
    }

    #[test]
    fn decorations_and_filters_render() {
        let (db, spec) = db();
        let p = Path::handcrafted(&db, &spec, &[("Appointments", "Patient", "Doctor")])
            .unwrap()
            .decorated(
                1,
                StepFilter {
                    col: 1,
                    op: CmpOp::Lt,
                    rhs: eba_relational::Rhs::AnchorCol(1),
                },
            )
            .unwrap();
        let spec = spec.with_filters(vec![(1, CmpOp::Ge, Value::Date(60))]);
        let sql = template_sql(&db, &spec, &p);
        assert!(sql.contains("T1.Date < L.Date"), "{sql}");
        assert!(sql.contains("L.Date >= day 0 01:00"), "{sql}");
    }
}
