//! Natural-language rendering of explanation instances.
//!
//! "Instances of a particular explanation template can be easily converted
//! to natural language by providing a parameterized description string"
//! (§2.1) — e.g. `"[L.Patient] had an appointment with [L.User] on
//! [T1.Date]."` renders as *"Alice had an appointment with Dave on
//! 1/1/2010."* for log record L1.
//!
//! Placeholders name a tuple variable alias (`L` for the anchor, `T1..Tn`
//! for joined tables, matching [`crate::sql`]) and a column. Templates
//! without an administrator-provided description fall back to an
//! auto-generated route description.

use crate::log_spec::LogSpec;
use crate::path::Path;
use eba_relational::{Database, Instance, RowId};
use std::fmt::Write;

/// Renders `description`, substituting `[Alias.Column]` placeholders from
/// the anchor log row and the instance's step rows. Unknown placeholders
/// are kept verbatim (so typos are visible, not silent).
pub fn render_description(
    db: &Database,
    spec: &LogSpec,
    path: &Path,
    description: &str,
    log_row: RowId,
    instance: &Instance,
) -> String {
    let mut out = String::with_capacity(description.len() + 16);
    let mut rest = description;
    while let Some(start) = rest.find('[') {
        out.push_str(&rest[..start]);
        let after = &rest[start + 1..];
        match after.find(']') {
            None => {
                out.push_str(&rest[start..]);
                rest = "";
                break;
            }
            Some(end) => {
                let placeholder = &after[..end];
                match resolve(db, spec, path, placeholder, log_row, instance) {
                    Some(text) => out.push_str(&text),
                    None => {
                        out.push('[');
                        out.push_str(placeholder);
                        out.push(']');
                    }
                }
                rest = &after[end + 1..];
            }
        }
    }
    out.push_str(rest);
    out
}

fn resolve(
    db: &Database,
    spec: &LogSpec,
    path: &Path,
    placeholder: &str,
    log_row: RowId,
    instance: &Instance,
) -> Option<String> {
    let (alias, col_name) = placeholder.split_once('.')?;
    let (table, row) = if alias == "L" {
        (spec.table, log_row)
    } else {
        let idx: usize = alias.strip_prefix('T')?.parse().ok()?;
        if idx == 0 || idx > instance.step_rows.len() {
            return None;
        }
        (path.tuple_vars()[idx - 1], instance.step_rows[idx - 1])
    };
    let t = db.table(table);
    let col = t.schema().col(col_name)?;
    Some(t.cell(row, col).display(db.pool()).to_string())
}

/// Auto-generated description of a template's route, used when no
/// administrator description exists: e.g.
/// `Log.Patient → Appointments(Patient→Doctor) → Log.User`.
pub fn auto_description(db: &Database, spec: &LogSpec, path: &Path) -> String {
    let schema = db.table(spec.table).schema();
    let mut s = String::new();
    let start = match path.direction() {
        crate::path::Direction::Forward => spec.patient_col,
        crate::path::Direction::Backward => spec.user_col,
    };
    let _ = write!(
        s,
        "{}.{}",
        db.table(spec.table).name(),
        schema.col_name(start)
    );
    let n_steps = path.tuple_var_count();
    for i in 0..n_steps {
        let enter = path.edges()[i].to;
        let exit_col = if i + 1 < path.edges().len() {
            path.edges()[i + 1].from.col
        } else {
            enter.col
        };
        let t = db.table(enter.table);
        if enter.col == exit_col {
            let _ = write!(s, " → {}({})", t.name(), t.schema().col_name(enter.col));
        } else {
            let _ = write!(
                s,
                " → {}({}→{})",
                t.name(),
                t.schema().col_name(enter.col),
                t.schema().col_name(exit_col)
            );
        }
    }
    if path.is_closed() {
        let end = match path.direction() {
            crate::path::Direction::Forward => spec.user_col,
            crate::path::Direction::Backward => spec.patient_col,
        };
        let _ = write!(
            s,
            " → {}.{}",
            db.table(spec.table).name(),
            schema.col_name(end)
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_relational::{DataType, EvalOptions, Value};

    fn db() -> (Database, LogSpec) {
        let mut db = Database::new();
        db.create_table(
            "Log",
            &[
                ("Lid", DataType::Int),
                ("Date", DataType::Date),
                ("User", DataType::Str),
                ("Patient", DataType::Str),
            ],
        )
        .unwrap();
        db.create_table(
            "Appointments",
            &[
                ("Patient", DataType::Str),
                ("Date", DataType::Date),
                ("Doctor", DataType::Str),
            ],
        )
        .unwrap();
        let alice = db.str_value("Alice");
        let dave = db.str_value("Dave");
        let appt = db.table_id("Appointments").unwrap();
        let log = db.table_id("Log").unwrap();
        db.insert(appt, vec![alice, Value::Date(24 * 60), dave])
            .unwrap();
        db.insert(
            log,
            vec![Value::Int(1), Value::Date(24 * 60 + 90), dave, alice],
        )
        .unwrap();
        let spec = LogSpec::conventional(&db).unwrap();
        (db, spec)
    }

    #[test]
    fn renders_the_papers_example_string() {
        let (db, spec) = db();
        let p = Path::handcrafted(&db, &spec, &[("Appointments", "Patient", "Doctor")]).unwrap();
        let q = p.to_chain_query(&spec);
        let instances = q.instances(&db, 0, 4).unwrap();
        assert_eq!(instances.len(), 1);
        let text = render_description(
            &db,
            &spec,
            &p,
            "[L.Patient] had an appointment with [L.User] on [T1.Date].",
            0,
            &instances[0],
        );
        assert_eq!(text, "Alice had an appointment with Dave on day 1 00:00.");
        // Explained as expected too.
        assert_eq!(q.support(&db, EvalOptions::default()).unwrap(), 1);
    }

    #[test]
    fn unknown_placeholders_stay_verbatim() {
        let (db, spec) = db();
        let p = Path::handcrafted(&db, &spec, &[("Appointments", "Patient", "Doctor")]).unwrap();
        let q = p.to_chain_query(&spec);
        let inst = q.instances(&db, 0, 1).unwrap().pop().unwrap();
        let text = render_description(&db, &spec, &p, "[T9.Nope] and [Bad]", 0, &inst);
        assert_eq!(text, "[T9.Nope] and [Bad]");
    }

    #[test]
    fn unclosed_bracket_is_preserved() {
        let (db, spec) = db();
        let p = Path::handcrafted(&db, &spec, &[("Appointments", "Patient", "Doctor")]).unwrap();
        let q = p.to_chain_query(&spec);
        let inst = q.instances(&db, 0, 1).unwrap().pop().unwrap();
        let text = render_description(&db, &spec, &p, "trailing [L.User", 0, &inst);
        assert_eq!(text, "trailing [L.User");
    }

    #[test]
    fn auto_description_shows_route() {
        let (db, spec) = db();
        let p = Path::handcrafted(&db, &spec, &[("Appointments", "Patient", "Doctor")]).unwrap();
        assert_eq!(
            auto_description(&db, &spec, &p),
            "Log.Patient → Appointments(Patient→Doctor) → Log.User"
        );
        let open =
            Path::handcrafted_open(&db, &spec, &[("Appointments", "Patient", "Patient")]).unwrap();
        assert_eq!(
            auto_description(&db, &spec, &open),
            "Log.Patient → Appointments(Patient)"
        );
    }
}
