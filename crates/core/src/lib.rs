//! # eba-core
//!
//! The core of *Explanation-Based Auditing* (Fabbri & LeFevre, VLDB 2011):
//! modeling **explanation templates** and **mining** them from a database
//! and its access log.
//!
//! ## Model (§2 of the paper)
//!
//! For certain classes of databases — electronic health records above all —
//! there is a reason for most data accesses, and the reason can be gleaned
//! from data stored elsewhere in the database. An *explanation template*
//! (Def. 1) is a stylized conjunctive query whose selection conditions form
//! a path that starts at the data that was accessed (`Log.Patient`), hops
//! through tables of the database, and terminates at the user who accessed
//! the data (`Log.User`):
//!
//! ```sql
//! SELECT L.Lid, L.Patient, L.User, A.Date
//! FROM Log L, Appointments A
//! WHERE L.Patient = A.Patient
//!   AND A.Doctor = L.User
//! ```
//!
//! A [`Path`] is the structural form of such a template; when it closes back
//! at the log it is an explanation template ([`ExplanationTemplate`]).
//! *Decorated* templates (Def. 3) carry extra selection conditions, e.g.
//! the strictly-earlier-date condition of the repeat-access template.
//!
//! ## Mining (§3)
//!
//! [`mining`] implements the paper's three algorithms — [`mining::mine_one_way`],
//! [`mining::mine_two_way`] and [`mining::mine_bridge`] — which discover all
//! templates of bounded length and table count whose *support* (the number
//! of distinct log ids they explain) exceeds a threshold, along with the
//! three performance optimizations of §3.2.1 (support caching over
//! canonicalized selection conditions, distinct-projection de-duplication,
//! and estimator-driven skipping of non-selective paths).

pub mod canonical;
pub mod describe;
pub mod edge;
pub mod log_spec;
pub mod mining;
pub mod path;
pub mod sql;
pub mod template;

pub use edge::{Edge, EdgeKind, EdgeSet};
pub use log_spec::LogSpec;
pub use mining::{
    mine_bridge, mine_one_way, mine_two_way, MinedTemplate, MiningConfig, MiningResult, MiningStats,
};
pub use path::{Direction, Path, PathError};
pub use template::ExplanationTemplate;
