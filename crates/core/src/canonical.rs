//! Canonical forms of paths, for the support cache.
//!
//! §3.2.1 ("Caching Selection Conditions and Support Values"): multiple
//! paths can carry the same selection conditions while traversing the
//! explanation graph in different orders — `R.attr = T.attr` is the same
//! condition as `T.attr = R.attr`, and a closed chain read from the patient
//! side is the same query as the chain read from the user side. Since the
//! order of selection conditions does not change the result, such paths are
//! guaranteed to have the same support, and the miner caches support values
//! under a canonical key.
//!
//! The key encodes the *set* of equality conditions with tuple variables
//! renamed canonically: every condition becomes an unordered pair of
//! `(table, column, alias-position)` triples; for closed paths the key is
//! the lexicographic minimum over the two traversal orders (patient→user
//! and user→patient), which unifies forward- and backward-mined copies of
//! the same template.

use crate::log_spec::LogSpec;
use crate::path::{Direction, Path};
use eba_relational::Rhs;
use std::fmt::Write;

/// A canonical cache key. Two paths with equal keys are guaranteed to
/// represent the same query (same selection-condition set, same anchoring),
/// hence the same support.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalKey(String);

impl CanonicalKey {
    /// The underlying encoded form (stable, suitable for display/debug).
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

/// One endpoint of a condition: table, column, canonical alias position.
type Endpoint = (usize, usize, usize);

/// Computes the canonical key of `path` under `spec`.
pub fn canonical_key(path: &Path, spec: &LogSpec) -> CanonicalKey {
    let n = path.length();
    let closed = path.is_closed();
    let tv_count = path.tuple_var_count();

    // Alias position of the tuple variable an edge index maps to, under
    // forward numbering: the anchor is 0; edge i (0-based) lands on tuple
    // variable i+1, except the closing edge which lands back on 0.
    let fwd_target = |i: usize| -> usize {
        if closed && i == n - 1 {
            0
        } else {
            i + 1
        }
    };
    // Backward renumbering for closed chains: anchor stays 0, tuple
    // variable j becomes tv_count + 1 - j.
    let bwd_alias = |a: usize| -> usize {
        if a == 0 {
            0
        } else {
            tv_count + 1 - a
        }
    };

    let mut conditions: Vec<(Endpoint, Endpoint)> = Vec::with_capacity(n);
    for (i, e) in path.edges().iter().enumerate() {
        let from_alias = i; // edge i leaves tuple variable i (0 = anchor)
        let to_alias = fwd_target(i);
        conditions.push(ordered_pair(
            (e.from.table.0, e.from.col, from_alias),
            (e.to.table.0, e.to.col, to_alias),
        ));
    }

    let fwd = encode(path, spec, &conditions, |a| a);
    let key = if closed {
        let bwd = encode(path, spec, &conditions, bwd_alias);
        fwd.min(bwd)
    } else {
        fwd
    };
    CanonicalKey(key)
}

fn ordered_pair(a: Endpoint, b: Endpoint) -> (Endpoint, Endpoint) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

fn encode(
    path: &Path,
    spec: &LogSpec,
    conditions: &[(Endpoint, Endpoint)],
    remap: impl Fn(usize) -> usize,
) -> String {
    let mut conds: Vec<(Endpoint, Endpoint)> = conditions
        .iter()
        .map(|&((t1, c1, a1), (t2, c2, a2))| ordered_pair((t1, c1, remap(a1)), (t2, c2, remap(a2))))
        .collect();
    conds.sort_unstable();

    let mut s = String::with_capacity(conds.len() * 24 + 32);
    // Anchoring: log table, role columns, open/closed, and direction for
    // open paths (an open forward path and an open backward path with the
    // same shape are different queries).
    let _ = write!(
        s,
        "L{}:{}:{}:{}|{}|",
        spec.table.0,
        spec.lid_col,
        spec.patient_col,
        spec.user_col,
        match (path.is_closed(), path.direction()) {
            (true, _) => "C",
            (false, Direction::Forward) => "F",
            (false, Direction::Backward) => "B",
        }
    );
    for ((t1, c1, a1), (t2, c2, a2)) in conds {
        let _ = write!(s, "({t1}.{c1}@{a1}={t2}.{c2}@{a2})");
    }
    // Decorations (sorted by alias already): rendered with remapped alias.
    for d in path.decorations() {
        let rhs = match d.filter.rhs {
            Rhs::Const(v) => format!("{v:?}"),
            Rhs::AnchorCol(c) => format!("L.{c}"),
        };
        let _ = write!(
            s,
            "[@{}:{} {} {}]",
            remap(d.alias),
            d.filter.col,
            d.filter.op.sql(),
            rhs
        );
    }
    // Anchor filters participate: different row subsets, different support.
    for (col, op, v) in &spec.anchor_filters {
        let _ = write!(s, "{{L.{col} {} {v:?}}}", op.sql());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::{Edge, EdgeKind};
    use eba_relational::{CmpOp, DataType, Database, Rhs, StepFilter, Value};

    fn db() -> (Database, LogSpec) {
        let mut db = Database::new();
        db.create_table(
            "Log",
            &[
                ("Lid", DataType::Int),
                ("Date", DataType::Date),
                ("User", DataType::Int),
                ("Patient", DataType::Int),
            ],
        )
        .unwrap();
        db.create_table(
            "Appointments",
            &[
                ("Patient", DataType::Int),
                ("Date", DataType::Date),
                ("Doctor", DataType::Int),
            ],
        )
        .unwrap();
        db.create_table(
            "Doctor_Info",
            &[("Doctor", DataType::Int), ("Department", DataType::Str)],
        )
        .unwrap();
        let spec = LogSpec::conventional(&db).unwrap();
        (db, spec)
    }

    fn edge(db: &Database, ft: &str, fc: &str, tt: &str, tc: &str) -> Edge {
        Edge {
            from: db.attr(ft, fc).unwrap(),
            to: db.attr(tt, tc).unwrap(),
            kind: EdgeKind::ForeignKey,
        }
    }

    #[test]
    fn forward_and_backward_mined_template_unify() {
        let (db, spec) = db();
        // Forward: L.P = A.P; A.D = L.U.
        let fwd = crate::path::Path::seed(
            &spec,
            Direction::Forward,
            edge(&db, "Log", "Patient", "Appointments", "Patient"),
        )
        .unwrap()
        .closed_by(edge(&db, "Appointments", "Doctor", "Log", "User"), &spec)
        .unwrap();
        // Backward: L.U = A.D; A.P = L.P (normalized forward on close).
        let bwd = crate::path::Path::seed(
            &spec,
            Direction::Backward,
            edge(&db, "Log", "User", "Appointments", "Doctor"),
        )
        .unwrap()
        .closed_by(
            edge(&db, "Appointments", "Patient", "Log", "Patient"),
            &spec,
        )
        .unwrap();
        assert_eq!(canonical_key(&fwd, &spec), canonical_key(&bwd, &spec));
    }

    #[test]
    fn longer_symmetric_template_unifies_across_directions() {
        let (db, spec) = db();
        let fwd = crate::path::Path::seed(
            &spec,
            Direction::Forward,
            edge(&db, "Log", "Patient", "Appointments", "Patient"),
        )
        .unwrap()
        .extended(edge(&db, "Appointments", "Doctor", "Doctor_Info", "Doctor"))
        .unwrap()
        .extended(Edge {
            from: db.attr("Doctor_Info", "Department").unwrap(),
            to: db.attr("Doctor_Info", "Department").unwrap(),
            kind: EdgeKind::SelfJoin,
        })
        .unwrap()
        .closed_by(edge(&db, "Doctor_Info", "Doctor", "Log", "User"), &spec)
        .unwrap();

        let bwd = crate::path::Path::seed(
            &spec,
            Direction::Backward,
            edge(&db, "Log", "User", "Doctor_Info", "Doctor"),
        )
        .unwrap()
        .extended(Edge {
            from: db.attr("Doctor_Info", "Department").unwrap(),
            to: db.attr("Doctor_Info", "Department").unwrap(),
            kind: EdgeKind::SelfJoin,
        })
        .unwrap()
        .extended(edge(&db, "Doctor_Info", "Doctor", "Appointments", "Doctor"))
        .unwrap()
        .closed_by(
            edge(&db, "Appointments", "Patient", "Log", "Patient"),
            &spec,
        )
        .unwrap();

        assert_eq!(canonical_key(&fwd, &spec), canonical_key(&bwd, &spec));
    }

    #[test]
    fn open_directions_do_not_unify() {
        let (db, spec) = db();
        let f = crate::path::Path::seed(
            &spec,
            Direction::Forward,
            edge(&db, "Log", "Patient", "Appointments", "Patient"),
        )
        .unwrap();
        let b = crate::path::Path::seed(
            &spec,
            Direction::Backward,
            edge(&db, "Log", "User", "Appointments", "Doctor"),
        )
        .unwrap();
        assert_ne!(canonical_key(&f, &spec), canonical_key(&b, &spec));
    }

    #[test]
    fn different_templates_have_different_keys() {
        let (db, spec) = db();
        let a =
            crate::path::Path::handcrafted(&db, &spec, &[("Appointments", "Patient", "Doctor")])
                .unwrap();
        let b = crate::path::Path::handcrafted(
            &db,
            &spec,
            &[
                ("Appointments", "Patient", "Doctor"),
                ("Doctor_Info", "Doctor", "Doctor"),
            ],
        )
        .unwrap();
        assert_ne!(canonical_key(&a, &spec), canonical_key(&b, &spec));
    }

    #[test]
    fn decorations_change_the_key() {
        let (db, spec) = db();
        let plain =
            crate::path::Path::handcrafted(&db, &spec, &[("Appointments", "Patient", "Doctor")])
                .unwrap();
        let decorated = plain
            .decorated(
                1,
                StepFilter {
                    col: 1,
                    op: CmpOp::Lt,
                    rhs: Rhs::AnchorCol(1),
                },
            )
            .unwrap();
        assert_ne!(
            canonical_key(&plain, &spec),
            canonical_key(&decorated, &spec)
        );
    }

    #[test]
    fn anchor_filters_change_the_key() {
        let (db, spec) = db();
        let p =
            crate::path::Path::handcrafted(&db, &spec, &[("Appointments", "Patient", "Doctor")])
                .unwrap();
        let filtered = spec.with_filters(vec![(1, CmpOp::Ge, Value::Date(10))]);
        assert_ne!(canonical_key(&p, &spec), canonical_key(&p, &filtered));
    }
}
