//! The schema graph's join edges.
//!
//! Def. 5 restricts the edges an explanation path may traverse to: (a)
//! attributes of the same tuple variable (implicit — a path may move between
//! any two columns of a table it has joined), (b) key–foreign-key
//! relationships, (c) administrator-specified relationships, and (d)
//! administrator-allowed self-joins. This module materializes the *explicit*
//! join edges (b)–(d) from the catalog's metadata; intra-tuple-variable
//! movement is handled implicitly by [`crate::path::Path`].

use eba_relational::{AttrRef, Database, RelationshipKind};

/// How an edge was declared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Key–foreign-key equi-join.
    ForeignKey,
    /// Administrator-specified relationship.
    Administrator,
    /// Administrator-allowed self-join: joining a table with a fresh alias
    /// of itself on one attribute (e.g. `Groups.Group_id = G2.Group_id`).
    SelfJoin,
}

/// A directed join edge `from → to` in the schema graph.
///
/// Directionality is traversal order only; the underlying condition
/// `from = to` is symmetric, and [`EdgeSet::build`] materializes both
/// directions of every declared relationship.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Attribute the path leaves from.
    pub from: AttrRef,
    /// Attribute the path arrives at (a fresh tuple variable, or the anchor
    /// log when the edge closes an explanation).
    pub to: AttrRef,
    /// Declaration source.
    pub kind: EdgeKind,
}

impl Edge {
    /// The same join condition traversed the other way.
    pub fn reversed(&self) -> Edge {
        Edge {
            from: self.to,
            to: self.from,
            kind: self.kind,
        }
    }

    /// True for self-join edges (same table and column on both sides).
    pub fn is_self_join(&self) -> bool {
        self.kind == EdgeKind::SelfJoin
    }

    /// Human-readable `A.x = B.y` form.
    pub fn display(&self, db: &Database) -> String {
        format!("{} = {}", db.attr_name(self.from), db.attr_name(self.to))
    }
}

/// All traversable join edges of a database's schema graph.
#[derive(Debug, Clone, Default)]
pub struct EdgeSet {
    edges: Vec<Edge>,
}

impl EdgeSet {
    /// Materializes the edge set from the catalog's relationship metadata:
    /// both directions of every FK / administrator relationship, plus one
    /// symmetric edge per allowed self-join attribute.
    pub fn build(db: &Database) -> Self {
        let mut edges = Vec::with_capacity(db.relationships().len() * 2);
        for rel in db.relationships() {
            let kind = match rel.kind {
                RelationshipKind::ForeignKey => EdgeKind::ForeignKey,
                RelationshipKind::Administrator => EdgeKind::Administrator,
            };
            let fwd = Edge {
                from: rel.from,
                to: rel.to,
                kind,
            };
            edges.push(fwd);
            // A relationship between an attribute and itself (e.g.
            // Log.Patient = Log.Patient, used by the repeat-access
            // template) is already symmetric.
            if rel.from != rel.to {
                edges.push(fwd.reversed());
            }
        }
        for &attr in db.self_join_attrs() {
            edges.push(Edge {
                from: attr,
                to: attr,
                kind: EdgeKind::SelfJoin,
            });
        }
        edges.sort_unstable_by_key(|e| (e.from, e.to, e.kind as u8));
        edges.dedup();
        EdgeSet { edges }
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Edges whose `from` attribute is exactly `attr` (used to seed mining
    /// with "edges that begin with the start attribute").
    pub fn from_attr(&self, attr: AttrRef) -> impl Iterator<Item = &Edge> {
        self.edges.iter().filter(move |e| e.from == attr)
    }

    /// Edges leaving any column of `table` (candidate extensions once the
    /// path is inside that table).
    pub fn from_table(&self, table: eba_relational::TableId) -> impl Iterator<Item = &Edge> {
        self.edges.iter().filter(move |e| e.from.table == table)
    }

    /// Number of directed edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if the schema declares no joinable relationships.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_relational::DataType;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "Log",
            &[
                ("Lid", DataType::Int),
                ("User", DataType::Int),
                ("Patient", DataType::Int),
            ],
        )
        .unwrap();
        db.create_table(
            "Appointments",
            &[("Patient", DataType::Int), ("Doctor", DataType::Int)],
        )
        .unwrap();
        db.create_table(
            "Groups",
            &[("Group_id", DataType::Int), ("User", DataType::Int)],
        )
        .unwrap();
        db.add_fk("Log", "Patient", "Appointments", "Patient")
            .unwrap();
        db.add_fk("Appointments", "Doctor", "Log", "User").unwrap();
        db.add_fk("Groups", "User", "Log", "User").unwrap();
        db.allow_self_join("Groups", "Group_id").unwrap();
        db
    }

    #[test]
    fn both_directions_are_materialized() {
        let db = db();
        let set = EdgeSet::build(&db);
        // 3 relationships × 2 directions + 1 self-join.
        assert_eq!(set.len(), 7);
        let log_patient = db.attr("Log", "Patient").unwrap();
        let appt_patient = db.attr("Appointments", "Patient").unwrap();
        assert!(set
            .edges()
            .iter()
            .any(|e| e.from == log_patient && e.to == appt_patient));
        assert!(set
            .edges()
            .iter()
            .any(|e| e.from == appt_patient && e.to == log_patient));
    }

    #[test]
    fn self_join_edges_are_single_and_marked() {
        let db = db();
        let set = EdgeSet::build(&db);
        let gid = db.attr("Groups", "Group_id").unwrap();
        let self_joins: Vec<_> = set.edges().iter().filter(|e| e.is_self_join()).collect();
        assert_eq!(self_joins.len(), 1);
        assert_eq!(self_joins[0].from, gid);
        assert_eq!(self_joins[0].to, gid);
    }

    #[test]
    fn seed_edges_from_start_attribute() {
        let db = db();
        let set = EdgeSet::build(&db);
        let start = db.attr("Log", "Patient").unwrap();
        let seeds: Vec<_> = set.from_attr(start).collect();
        assert_eq!(seeds.len(), 1);
        assert_eq!(seeds[0].to, db.attr("Appointments", "Patient").unwrap());
    }

    #[test]
    fn same_attribute_relationship_is_not_duplicated() {
        let mut db = db();
        let lp = db.attr("Log", "Patient").unwrap();
        db.add_relationship(lp, lp, RelationshipKind::Administrator)
            .unwrap();
        let set = EdgeSet::build(&db);
        let self_edges: Vec<_> = set
            .edges()
            .iter()
            .filter(|e| e.from == lp && e.to == lp)
            .collect();
        assert_eq!(self_edges.len(), 1);
    }

    #[test]
    fn display_is_readable() {
        let db = db();
        let set = EdgeSet::build(&db);
        let start = db.attr("Log", "Patient").unwrap();
        let e = set.from_attr(start).next().unwrap();
        assert_eq!(e.display(&db), "Log.Patient = Appointments.Patient");
    }
}
