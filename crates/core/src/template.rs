//! Explanation templates: closed paths plus presentation metadata.

use crate::describe;
use crate::log_spec::LogSpec;
use crate::path::Path;
use crate::sql;
use eba_relational::{Database, Engine, EvalOptions, Instance, Result, RowId};

/// A closed path packaged for use: optional name, optional
/// administrator-provided description string, and cached evaluation entry
/// points.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplanationTemplate {
    /// The underlying closed path.
    pub path: Path,
    /// Short name for reports (e.g. `"Appt w/Dr."`).
    pub name: Option<String>,
    /// Parameterized description string (see [`crate::describe`]); falls
    /// back to the auto-generated route text.
    pub description: Option<String>,
}

impl ExplanationTemplate {
    /// Wraps a closed path.
    ///
    /// # Panics
    /// Panics if the path is not closed (open paths are event predicates,
    /// not explanations).
    pub fn new(path: Path) -> Self {
        assert!(
            path.is_closed(),
            "explanation templates must be closed paths"
        );
        ExplanationTemplate {
            path,
            name: None,
            description: None,
        }
    }

    /// Sets the report name.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Sets the parameterized description string.
    pub fn described(mut self, description: impl Into<String>) -> Self {
        self.description = Some(description.into());
        self
    }

    /// Template length (number of join conditions).
    pub fn length(&self) -> usize {
        self.path.length()
    }

    /// Log rows explained by this template.
    pub fn explained_rows(&self, db: &Database, spec: &LogSpec) -> Result<Vec<RowId>> {
        self.path
            .to_chain_query(spec)
            .explained_rows(db, EvalOptions::default())
    }

    /// [`ExplanationTemplate::explained_rows`] through a warm [`Engine`]
    /// over `db` — identical rows, but step maps and log partitions are
    /// shared with every other query the engine has served.
    pub fn explained_rows_with(
        &self,
        db: &Database,
        spec: &LogSpec,
        engine: &Engine,
    ) -> Result<Vec<RowId>> {
        engine.explained_rows(db, &self.path.to_chain_query(spec), EvalOptions::default())
    }

    /// Support: distinct log ids explained.
    pub fn support(&self, db: &Database, spec: &LogSpec) -> Result<usize> {
        self.path
            .to_chain_query(spec)
            .support(db, EvalOptions::default())
    }

    /// [`ExplanationTemplate::support`] through a warm [`Engine`] over `db`.
    pub fn support_with(&self, db: &Database, spec: &LogSpec, engine: &Engine) -> Result<usize> {
        engine.support(db, &self.path.to_chain_query(spec), EvalOptions::default())
    }

    /// Explanation instances for one log record (up to `limit` witnesses).
    pub fn instances(
        &self,
        db: &Database,
        spec: &LogSpec,
        log_row: RowId,
        limit: usize,
    ) -> Result<Vec<Instance>> {
        self.path.to_chain_query(spec).instances(db, log_row, limit)
    }

    /// Natural-language rendering of one instance.
    pub fn render(
        &self,
        db: &Database,
        spec: &LogSpec,
        log_row: RowId,
        instance: &Instance,
    ) -> String {
        match &self.description {
            Some(d) => describe::render_description(db, spec, &self.path, d, log_row, instance),
            None => describe::auto_description(db, spec, &self.path),
        }
    }

    /// The template's SQL (Def. 1 presentation form).
    pub fn to_sql(&self, db: &Database, spec: &LogSpec) -> String {
        sql::template_sql(db, spec, &self.path)
    }

    /// The label used in reports: the name if set, else the auto route.
    pub fn label(&self, db: &Database, spec: &LogSpec) -> String {
        match &self.name {
            Some(n) => n.clone(),
            None => describe::auto_description(db, spec, &self.path),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_relational::{DataType, Value};

    fn db() -> (Database, LogSpec) {
        let mut db = Database::new();
        db.create_table(
            "Log",
            &[
                ("Lid", DataType::Int),
                ("Date", DataType::Date),
                ("User", DataType::Int),
                ("Patient", DataType::Int),
            ],
        )
        .unwrap();
        db.create_table(
            "Appointments",
            &[
                ("Patient", DataType::Int),
                ("Date", DataType::Date),
                ("Doctor", DataType::Int),
            ],
        )
        .unwrap();
        let appt = db.table_id("Appointments").unwrap();
        let log = db.table_id("Log").unwrap();
        db.insert(appt, vec![Value::Int(10), Value::Date(0), Value::Int(1)])
            .unwrap();
        db.insert(
            log,
            vec![Value::Int(1), Value::Date(5), Value::Int(1), Value::Int(10)],
        )
        .unwrap();
        db.insert(
            log,
            vec![Value::Int(2), Value::Date(6), Value::Int(2), Value::Int(10)],
        )
        .unwrap();
        let spec = LogSpec::conventional(&db).unwrap();
        (db, spec)
    }

    #[test]
    fn template_support_and_instances() {
        let (db, spec) = db();
        let t = ExplanationTemplate::new(
            Path::handcrafted(&db, &spec, &[("Appointments", "Patient", "Doctor")]).unwrap(),
        )
        .named("Appt w/Dr.")
        .described("[L.Patient] had an appointment with [L.User].");
        assert_eq!(t.support(&db, &spec).unwrap(), 1);
        assert_eq!(t.explained_rows(&db, &spec).unwrap(), vec![0]);
        let inst = t.instances(&db, &spec, 0, 4).unwrap();
        assert_eq!(inst.len(), 1);
        assert_eq!(
            t.render(&db, &spec, 0, &inst[0]),
            "10 had an appointment with 1."
        );
        assert_eq!(t.label(&db, &spec), "Appt w/Dr.");
        assert_eq!(t.length(), 2);
    }

    #[test]
    #[should_panic(expected = "must be closed")]
    fn open_paths_are_rejected() {
        let (db, spec) = db();
        let open =
            Path::handcrafted_open(&db, &spec, &[("Appointments", "Patient", "Patient")]).unwrap();
        ExplanationTemplate::new(open);
    }

    #[test]
    fn label_falls_back_to_route() {
        let (db, spec) = db();
        let t = ExplanationTemplate::new(
            Path::handcrafted(&db, &spec, &[("Appointments", "Patient", "Doctor")]).unwrap(),
        );
        assert!(t.label(&db, &spec).contains("Appointments"));
    }
}
