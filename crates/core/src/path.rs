//! Paths through the database, the structural form of explanation templates.
//!
//! Per Def. 1, an explanation template's query graph must contain a path
//! that starts at `Log.Patient`, touches at least one attribute of every
//! joined tuple variable, and terminates at `Log.User`, traversing no edge
//! twice. A [`Path`] here is exactly that object in normalized chain form:
//!
//! * the **anchor** is the log tuple variable (`L`), contributing the start
//!   attribute and — once the path closes — the end attribute;
//! * each join [`Edge`] appended to the path enters a **fresh tuple
//!   variable** (self-joins included: a new alias of the same table), except
//!   the closing edge, which lands back on the anchor;
//! * movement *within* a tuple variable (entering at one column, leaving
//!   from another) is implicit, mirroring the paper's intra-tuple-variable
//!   edges;
//! * simplicity (Def. 2) is structural: a tuple variable is entered exactly
//!   once and contributes at most two attributes, so no selection condition
//!   can be removed while keeping the path connected.
//!
//! Paths are grown in two [`Direction`]s: `Forward` from `Log.Patient`
//! toward `Log.User` (the one-way algorithm) and `Backward` from `Log.User`
//! toward `Log.Patient` (the second frontier of the two-way algorithm).
//! A closed backward path is immediately normalized into forward form.

use crate::edge::Edge;
use crate::log_spec::LogSpec;
use eba_relational::{ChainQuery, ChainStep, Database, StepFilter, TableId};
use std::collections::HashSet;
use std::fmt;

/// Which anchor attribute a partial path grows from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Growing from `Log.Patient` toward `Log.User`.
    Forward,
    /// Growing from `Log.User` toward `Log.Patient`.
    Backward,
}

impl Direction {
    /// The opposite direction.
    pub fn flipped(self) -> Direction {
        match self {
            Direction::Forward => Direction::Backward,
            Direction::Backward => Direction::Forward,
        }
    }
}

/// Errors from path construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// The edge's `from` attribute is not in the path's tip tuple variable.
    NotConnected,
    /// Attempted to extend a closed path.
    AlreadyClosed,
    /// A closing edge would create a degenerate length-1 explanation
    /// (`Log.Patient = Log.User` with no joined tables).
    Degenerate,
    /// The seed edge does not begin at the anchor attribute.
    BadSeed,
    /// A decoration referenced a tuple variable the path does not have.
    BadDecorationAlias(usize),
    /// Reversal is only defined for closed, undecorated paths.
    NotReversible,
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::NotConnected => write!(f, "edge is not connected to the path tip"),
            PathError::AlreadyClosed => write!(f, "path is already closed"),
            PathError::Degenerate => write!(f, "length-1 closed paths are degenerate"),
            PathError::BadSeed => write!(f, "seed edge must begin at the anchor attribute"),
            PathError::BadDecorationAlias(a) => write!(f, "no tuple variable with alias {a}"),
            PathError::NotReversible => {
                write!(f, "only closed undecorated paths can be reversed")
            }
        }
    }
}

impl std::error::Error for PathError {}

/// An extra selection condition attached to a non-anchor tuple variable,
/// making the template *decorated* (Def. 3).
#[derive(Debug, Clone, PartialEq)]
pub struct Decoration {
    /// Tuple-variable index the condition applies to (1-based; 0 is the
    /// anchor, which is constrained via [`LogSpec::anchor_filters`] instead).
    pub alias: usize,
    /// The condition itself.
    pub filter: StepFilter,
}

/// A (partial or complete) explanation path. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    direction: Direction,
    edges: Vec<Edge>,
    closed: bool,
    decorations: Vec<Decoration>,
}

impl Path {
    // ------------------------------------------------------------- building

    /// Seeds a path with a first edge leaving the anchor attribute. Returns
    /// the open continuation; a seed edge can never close (a length-1
    /// explanation would join no tables).
    pub fn seed(spec: &LogSpec, direction: Direction, edge: Edge) -> Result<Path, PathError> {
        let anchor = match direction {
            Direction::Forward => spec.start_attr(),
            Direction::Backward => spec.end_attr(),
        };
        if edge.from != anchor {
            return Err(PathError::BadSeed);
        }
        Ok(Path {
            direction,
            edges: vec![edge],
            closed: false,
            decorations: Vec::new(),
        })
    }

    /// The attribute at the open end of the path (the `to` of the last
    /// edge, inside the most recent tuple variable).
    ///
    /// # Panics
    /// Panics on a closed path (the tip is the anchor itself).
    pub fn tip(&self) -> eba_relational::AttrRef {
        assert!(!self.closed, "closed paths have no tip");
        self.edges.last().expect("paths are never empty").to
    }

    /// Whether `edge` can extend this path: the path must be open and the
    /// edge must leave from the tip tuple variable (any of its columns —
    /// intra-tuple-variable movement is implicit).
    pub fn connects(&self, edge: &Edge) -> bool {
        !self.closed && edge.from.table == self.tip().table
    }

    /// Extends the path with `edge` as a *continuation*: the edge's target
    /// becomes a fresh tuple variable.
    pub fn extended(&self, edge: Edge) -> Result<Path, PathError> {
        if self.closed {
            return Err(PathError::AlreadyClosed);
        }
        if !self.connects(&edge) {
            return Err(PathError::NotConnected);
        }
        let mut edges = Vec::with_capacity(self.edges.len() + 1);
        edges.extend_from_slice(&self.edges);
        edges.push(edge);
        Ok(Path {
            direction: self.direction,
            edges,
            closed: false,
            decorations: self.decorations.clone(),
        })
    }

    /// Extends the path with `edge` landing on the anchor's opposite
    /// attribute, closing it into an explanation template.
    pub fn closed_by(&self, edge: Edge, spec: &LogSpec) -> Result<Path, PathError> {
        if self.closed {
            return Err(PathError::AlreadyClosed);
        }
        if !self.connects(&edge) {
            return Err(PathError::NotConnected);
        }
        let target = match self.direction {
            Direction::Forward => spec.end_attr(),
            Direction::Backward => spec.start_attr(),
        };
        if edge.to != target {
            return Err(PathError::NotConnected);
        }
        if self.edges.is_empty() {
            return Err(PathError::Degenerate);
        }
        let mut edges = Vec::with_capacity(self.edges.len() + 1);
        edges.extend_from_slice(&self.edges);
        edges.push(edge);
        let closed = Path {
            direction: self.direction,
            edges,
            closed: true,
            decorations: self.decorations.clone(),
        };
        // Normalize: closed paths are always stored forward.
        match self.direction {
            Direction::Forward => Ok(closed),
            Direction::Backward => closed.reversed(),
        }
    }

    /// Adds a decoration (extra selection condition) to tuple variable
    /// `alias` (1-based).
    pub fn decorated(&self, alias: usize, filter: StepFilter) -> Result<Path, PathError> {
        if alias == 0 || alias > self.tuple_var_count() {
            return Err(PathError::BadDecorationAlias(alias));
        }
        let mut p = self.clone();
        p.decorations.push(Decoration { alias, filter });
        p.decorations.sort_by_key(|d| d.alias);
        Ok(p)
    }

    /// Reverses a closed, undecorated path (flip every edge and their
    /// order). Used to normalize backward-mined explanations into forward
    /// form; the selection conditions — and therefore the query — are
    /// unchanged.
    pub fn reversed(&self) -> Result<Path, PathError> {
        if !self.closed || !self.decorations.is_empty() {
            return Err(PathError::NotReversible);
        }
        let edges = self.edges.iter().rev().map(Edge::reversed).collect();
        Ok(Path {
            direction: self.direction.flipped(),
            edges,
            closed: true,
            decorations: Vec::new(),
        })
    }

    // ------------------------------------------------------------ accessors

    /// Join edges in traversal order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Path length: the number of join conditions (the paper's Figure 13/14
    /// x-axis: "the length corresponds to the number of joins in the path").
    pub fn length(&self) -> usize {
        self.edges.len()
    }

    /// Whether the path terminates back at the anchor (is an explanation
    /// template).
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Growth direction (closed paths are always `Forward`).
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// The decorations, sorted by alias.
    pub fn decorations(&self) -> &[Decoration] {
        &self.decorations
    }

    /// Number of non-anchor tuple variables.
    pub fn tuple_var_count(&self) -> usize {
        if self.closed {
            self.edges.len() - 1
        } else {
            self.edges.len()
        }
    }

    /// Tables of the non-anchor tuple variables, in order (one per
    /// continuation edge).
    pub fn tuple_vars(&self) -> Vec<TableId> {
        (0..self.tuple_var_count())
            .map(|i| self.edges[i].to.table)
            .collect()
    }

    /// Number of *distinct tables* the path references, counting the anchor
    /// log and counting self-join aliases once (the paper: "a path that
    /// references a table and a self-join for that table is counted as a
    /// single reference"), excluding `exempt` tables (the paper excludes
    /// its audit-id↔caregiver-id mapping table from the limit).
    pub fn table_count(&self, anchor: TableId, exempt: &[TableId]) -> usize {
        let mut tables: HashSet<TableId> = HashSet::new();
        if !exempt.contains(&anchor) {
            tables.insert(anchor);
        }
        for t in self.tuple_vars() {
            if !exempt.contains(&t) {
                tables.insert(t);
            }
        }
        tables.len()
    }

    /// Restricted-template check (Def. 4): length and table-count limits.
    pub fn is_restricted(
        &self,
        anchor: TableId,
        max_length: usize,
        max_tables: usize,
        exempt: &[TableId],
    ) -> bool {
        self.length() <= max_length && self.table_count(anchor, exempt) <= max_tables
    }

    // ----------------------------------------------------------- conversion

    /// Lowers the path to the engine's [`ChainQuery`] for evaluation.
    ///
    /// Open paths become existence queries from the anchor attribute;
    /// closed paths additionally require the final exit value to equal the
    /// anchor row's opposite attribute.
    pub fn to_chain_query(&self, spec: &LogSpec) -> ChainQuery {
        let start_col = match self.direction {
            Direction::Forward => spec.patient_col,
            Direction::Backward => spec.user_col,
        };
        let close_col = if self.closed {
            Some(match self.direction {
                Direction::Forward => spec.user_col,
                Direction::Backward => spec.patient_col,
            })
        } else {
            None
        };
        let n_steps = self.tuple_var_count();
        let mut steps = Vec::with_capacity(n_steps);
        for i in 0..n_steps {
            let enter = self.edges[i].to;
            let exit_col = if i + 1 < self.edges.len() {
                self.edges[i + 1].from.col
            } else {
                enter.col
            };
            steps.push(ChainStep::new(enter.table, enter.col, exit_col));
        }
        for d in &self.decorations {
            steps[d.alias - 1].filters.push(d.filter);
        }
        ChainQuery {
            log: spec.table,
            lid_col: spec.lid_col,
            start_col,
            steps,
            close_col,
            anchor_filters: spec.anchor_filters.clone(),
        }
    }

    // ---------------------------------------------------------- handcrafted

    /// Builds a closed forward path from `(table, enter_col, exit_col)`
    /// hops, for hand-crafting the paper's templates:
    ///
    /// ```text
    /// Log.Patient = hops[0].enter,
    /// hops[i].exit = hops[i+1].enter, ...,
    /// hops[last].exit = Log.User
    /// ```
    pub fn handcrafted(
        db: &Database,
        spec: &LogSpec,
        hops: &[(&str, &str, &str)],
    ) -> eba_relational::Result<Path> {
        let path = Self::handcrafted_open(db, spec, hops)?;
        let last = hops
            .last()
            .expect("handcrafted paths need at least one hop");
        let from = db.attr(last.0, last.2)?;
        let closing = Edge {
            from,
            to: spec.end_attr(),
            kind: crate::edge::EdgeKind::Administrator,
        };
        path.closed_by(closing, spec)
            .map_err(|e| eba_relational::Error::InvalidQuery(e.to_string()))
    }

    /// Open variant of [`Path::handcrafted`]: the path stops inside the last
    /// hop's table (used for "patient had *some* event" predicates).
    pub fn handcrafted_open(
        db: &Database,
        spec: &LogSpec,
        hops: &[(&str, &str, &str)],
    ) -> eba_relational::Result<Path> {
        assert!(!hops.is_empty(), "handcrafted paths need at least one hop");
        let first_enter = db.attr(hops[0].0, hops[0].1)?;
        let seed = Edge {
            from: spec.start_attr(),
            to: first_enter,
            kind: crate::edge::EdgeKind::Administrator,
        };
        let mut path = Path::seed(spec, Direction::Forward, seed)
            .map_err(|e| eba_relational::Error::InvalidQuery(e.to_string()))?;
        for w in hops.windows(2) {
            let from = db.attr(w[0].0, w[0].2)?;
            let to = db.attr(w[1].0, w[1].1)?;
            let edge = Edge {
                from,
                to,
                kind: crate::edge::EdgeKind::Administrator,
            };
            path = path
                .extended(edge)
                .map_err(|e| eba_relational::Error::InvalidQuery(e.to_string()))?;
        }
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::EdgeKind;
    use eba_relational::{CmpOp, DataType, EvalOptions, Rhs, Value};

    /// Figure 3 database plus FK metadata.
    fn db() -> (Database, LogSpec) {
        let mut db = Database::new();
        db.create_table(
            "Log",
            &[
                ("Lid", DataType::Int),
                ("Date", DataType::Date),
                ("User", DataType::Int),
                ("Patient", DataType::Int),
            ],
        )
        .unwrap();
        db.create_table(
            "Appointments",
            &[
                ("Patient", DataType::Int),
                ("Date", DataType::Date),
                ("Doctor", DataType::Int),
            ],
        )
        .unwrap();
        db.create_table(
            "Doctor_Info",
            &[("Doctor", DataType::Int), ("Department", DataType::Str)],
        )
        .unwrap();
        db.add_fk("Log", "Patient", "Appointments", "Patient")
            .unwrap();
        db.add_fk("Appointments", "Doctor", "Log", "User").unwrap();
        db.add_fk("Appointments", "Doctor", "Doctor_Info", "Doctor")
            .unwrap();
        db.add_fk("Doctor_Info", "Doctor", "Log", "User").unwrap();
        db.allow_self_join("Doctor_Info", "Department").unwrap();

        let ped = db.str_value("Pediatrics");
        let appt = db.table_id("Appointments").unwrap();
        let info = db.table_id("Doctor_Info").unwrap();
        let log = db.table_id("Log").unwrap();
        db.insert(appt, vec![Value::Int(10), Value::Date(1), Value::Int(1)])
            .unwrap();
        db.insert(appt, vec![Value::Int(11), Value::Date(2), Value::Int(2)])
            .unwrap();
        db.insert(info, vec![Value::Int(2), ped]).unwrap();
        db.insert(info, vec![Value::Int(1), ped]).unwrap();
        db.insert(
            log,
            vec![Value::Int(1), Value::Date(1), Value::Int(1), Value::Int(10)],
        )
        .unwrap();
        db.insert(
            log,
            vec![Value::Int(2), Value::Date(2), Value::Int(1), Value::Int(11)],
        )
        .unwrap();
        let spec = LogSpec::conventional(&db).unwrap();
        (db, spec)
    }

    fn edge(db: &Database, ft: &str, fc: &str, tt: &str, tc: &str) -> Edge {
        Edge {
            from: db.attr(ft, fc).unwrap(),
            to: db.attr(tt, tc).unwrap(),
            kind: EdgeKind::ForeignKey,
        }
    }

    #[test]
    fn seed_requires_anchor_attribute() {
        let (db, spec) = db();
        let good = edge(&db, "Log", "Patient", "Appointments", "Patient");
        let bad = edge(&db, "Appointments", "Doctor", "Log", "User");
        assert!(Path::seed(&spec, Direction::Forward, good).is_ok());
        assert_eq!(
            Path::seed(&spec, Direction::Forward, bad).unwrap_err(),
            PathError::BadSeed
        );
        // The same edge seeds backward mining.
        let back = edge(&db, "Log", "User", "Appointments", "Doctor");
        assert!(Path::seed(&spec, Direction::Backward, back).is_ok());
    }

    #[test]
    fn template_a_via_extension_and_close() {
        let (db, spec) = db();
        let p = Path::seed(
            &spec,
            Direction::Forward,
            edge(&db, "Log", "Patient", "Appointments", "Patient"),
        )
        .unwrap();
        assert_eq!(p.length(), 1);
        assert!(!p.is_closed());
        let closed = p
            .closed_by(edge(&db, "Appointments", "Doctor", "Log", "User"), &spec)
            .unwrap();
        assert!(closed.is_closed());
        assert_eq!(closed.length(), 2);
        assert_eq!(closed.tuple_var_count(), 1);
        // Example 3.1: support 1 of 2.
        let q = closed.to_chain_query(&spec);
        assert_eq!(q.support(&db, EvalOptions::default()).unwrap(), 1);
    }

    #[test]
    fn template_b_with_self_join_has_full_support() {
        let (db, spec) = db();
        let p = Path::seed(
            &spec,
            Direction::Forward,
            edge(&db, "Log", "Patient", "Appointments", "Patient"),
        )
        .unwrap()
        .extended(edge(&db, "Appointments", "Doctor", "Doctor_Info", "Doctor"))
        .unwrap()
        .extended(Edge {
            from: db.attr("Doctor_Info", "Department").unwrap(),
            to: db.attr("Doctor_Info", "Department").unwrap(),
            kind: EdgeKind::SelfJoin,
        })
        .unwrap()
        .closed_by(edge(&db, "Doctor_Info", "Doctor", "Log", "User"), &spec)
        .unwrap();
        assert_eq!(p.length(), 4);
        assert_eq!(p.tuple_var_count(), 3);
        // Tables: Log, Appointments, Doctor_Info (self-join counted once).
        assert_eq!(p.table_count(spec.table, &[]), 3);
        let q = p.to_chain_query(&spec);
        assert_eq!(q.support(&db, EvalOptions::default()).unwrap(), 2);
    }

    #[test]
    fn backward_closed_paths_normalize_to_forward() {
        let (db, spec) = db();
        // Backward: Log.User = Appointments.Doctor, then close with
        // Appointments.Patient = Log.Patient.
        let p = Path::seed(
            &spec,
            Direction::Backward,
            edge(&db, "Log", "User", "Appointments", "Doctor"),
        )
        .unwrap()
        .closed_by(
            edge(&db, "Appointments", "Patient", "Log", "Patient"),
            &spec,
        )
        .unwrap();
        assert!(p.is_closed());
        assert_eq!(p.direction(), Direction::Forward);
        // It is exactly template (A).
        let q = p.to_chain_query(&spec);
        assert_eq!(q.start_col, spec.patient_col);
        assert_eq!(q.close_col, Some(spec.user_col));
        assert_eq!(q.support(&db, EvalOptions::default()).unwrap(), 1);
    }

    #[test]
    fn connects_requires_tip_table() {
        let (db, spec) = db();
        let p = Path::seed(
            &spec,
            Direction::Forward,
            edge(&db, "Log", "Patient", "Appointments", "Patient"),
        )
        .unwrap();
        assert!(p.connects(&edge(
            &db,
            "Appointments",
            "Doctor",
            "Doctor_Info",
            "Doctor"
        )));
        assert!(!p.connects(&edge(&db, "Doctor_Info", "Doctor", "Log", "User")));
        let err = p
            .extended(edge(&db, "Doctor_Info", "Doctor", "Log", "User"))
            .unwrap_err();
        assert_eq!(err, PathError::NotConnected);
    }

    #[test]
    fn closed_paths_reject_extension() {
        let (db, spec) = db();
        let p = Path::handcrafted(&db, &spec, &[("Appointments", "Patient", "Doctor")]).unwrap();
        let err = p
            .extended(edge(&db, "Log", "Patient", "Appointments", "Patient"))
            .unwrap_err();
        assert_eq!(err, PathError::AlreadyClosed);
    }

    #[test]
    fn decoration_validation_and_lowering() {
        let (db, spec) = db();
        let p = Path::handcrafted(&db, &spec, &[("Appointments", "Patient", "Doctor")]).unwrap();
        let date_col = db.table(spec.table).schema().col("Date").unwrap();
        let appt_date = 1; // Appointments.Date
        let decorated = p
            .decorated(
                1,
                StepFilter {
                    col: appt_date,
                    op: CmpOp::Le,
                    rhs: Rhs::AnchorCol(date_col),
                },
            )
            .unwrap();
        assert_eq!(decorated.decorations().len(), 1);
        assert!(decorated
            .decorated(0, decorated.decorations()[0].filter)
            .is_err());
        assert!(decorated
            .decorated(5, decorated.decorations()[0].filter)
            .is_err());
        let q = decorated.to_chain_query(&spec);
        assert!(q.is_anchor_dependent());
        // Appointment on day 1 ≤ access on day 1: L1 still explained.
        assert_eq!(
            q.explained_rows(&db, EvalOptions::default()).unwrap(),
            vec![0]
        );
    }

    #[test]
    fn reversal_round_trips() {
        let (db, spec) = db();
        let p = Path::handcrafted(
            &db,
            &spec,
            &[
                ("Appointments", "Patient", "Doctor"),
                ("Doctor_Info", "Doctor", "Department"),
                ("Doctor_Info", "Department", "Doctor"),
            ],
        )
        .unwrap();
        let r = p.reversed().unwrap();
        assert_eq!(r.length(), p.length());
        let rr = r.reversed().unwrap();
        assert_eq!(rr.edges(), p.edges());
        // Both directions evaluate identically.
        let q1 = p.to_chain_query(&spec);
        let q2 = r.to_chain_query(&spec);
        assert_eq!(
            q1.support(&db, EvalOptions::default()).unwrap(),
            q2.support(&db, EvalOptions::default()).unwrap()
        );
    }

    #[test]
    fn open_paths_are_not_reversible() {
        let (db, spec) = db();
        let p =
            Path::handcrafted_open(&db, &spec, &[("Appointments", "Patient", "Patient")]).unwrap();
        assert_eq!(p.reversed().unwrap_err(), PathError::NotReversible);
    }

    #[test]
    fn exempt_tables_do_not_count() {
        let (db, spec) = db();
        let p = Path::handcrafted(
            &db,
            &spec,
            &[
                ("Appointments", "Patient", "Doctor"),
                ("Doctor_Info", "Doctor", "Doctor"),
            ],
        )
        .unwrap();
        assert_eq!(p.table_count(spec.table, &[]), 3);
        let info = db.table_id("Doctor_Info").unwrap();
        assert_eq!(p.table_count(spec.table, &[info]), 2);
        assert!(p.is_restricted(spec.table, 3, 2, &[info]));
        assert!(!p.is_restricted(spec.table, 3, 2, &[]));
        assert!(!p.is_restricted(spec.table, 2, 3, &[]));
    }

    #[test]
    fn open_path_lowering_counts_patients_with_events() {
        let (db, spec) = db();
        let p =
            Path::handcrafted_open(&db, &spec, &[("Appointments", "Patient", "Patient")]).unwrap();
        let q = p.to_chain_query(&spec);
        assert_eq!(q.close_col, None);
        assert_eq!(q.support(&db, EvalOptions::default()).unwrap(), 2);
    }
}
