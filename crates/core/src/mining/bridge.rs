//! Bridged template mining (§3.3.1).
//!
//! Phase 1 runs two-way exploration up to partial-path length ℓ, retaining
//! every supported open path per length and direction. Phase 2 *bridges*:
//! a forward path of length ℓ and a backward path of length k share a
//! **bridge edge** when the forward path's last condition equals the
//! backward path's last condition; gluing them on that shared edge yields a
//! candidate template of length `ℓ + k − 1 ≤ 2ℓ − 1` whose support is then
//! verified directly. Because the start- and end-attribute constraints are
//! pushed down into both halves, far fewer candidates are tested than the
//! bottom-up algorithms would generate.
//!
//! For desired lengths `n ≥ 2ℓ` the halves no longer overlap; the paper
//! notes the algorithm "must consider all combinations of edges from the
//! schema to bridge these paths", which grows exponentially. We implement
//! the two tractable cases — a direct alias merge (`n = 2ℓ`) and a single
//! middle edge (`n = 2ℓ + 1`) — so `Bridge-2` can mine to length 5 as in
//! the paper's Figure 13. Configurations requiring `n > 2ℓ + 1` are
//! rejected.
//!
//! Like the bottom-up rounds, each gluing phase first *generates* its
//! whole candidate set and then evaluates it as one [`Ctx::supports_of`]
//! batch against the shared engine, preserving the sequential results and
//! counters exactly.

use crate::canonical::{canonical_key, CanonicalKey};
use crate::edge::EdgeSet;
use crate::log_spec::LogSpec;
use crate::mining::shared::{expand_frontier, finish, seed_frontier, Ctx};
use crate::mining::{MinedTemplate, MiningConfig, MiningResult};
use crate::path::{Direction, Path};
use eba_relational::{AttrRef, Database, Error, Result};
use std::collections::HashMap;
use std::time::Instant;

/// Mines templates with the bridging algorithm, using partial paths up to
/// length `ell` (the paper's `Bridge-ℓ`).
///
/// # Errors
/// Returns an error when `config.max_length > 2·ell + 1` (those lengths
/// would require exhaustive middle-edge enumeration) or `ell < 2`.
pub fn mine_bridge(
    db: &Database,
    spec: &LogSpec,
    config: &MiningConfig,
    ell: usize,
) -> Result<MiningResult> {
    if ell < 2 {
        return Err(Error::InvalidQuery(
            "bridging requires partial paths of length at least 2".into(),
        ));
    }
    if config.max_length > 2 * ell + 1 {
        return Err(Error::InvalidQuery(format!(
            "Bridge-{ell} covers template lengths up to {}, but max_length is {}",
            2 * ell + 1,
            config.max_length
        )));
    }

    let edges = EdgeSet::build(db);
    let mut ctx = Ctx::new(db, spec, config);
    let mut explanations: HashMap<CanonicalKey, MinedTemplate> = HashMap::new();

    // ---- Phase 1: two-way exploration to length ℓ, keeping every level.
    let explore_to = ell.min(config.max_length);
    let mut fwd_levels: Vec<Vec<Path>> = Vec::with_capacity(explore_to);
    let mut bwd_levels: Vec<Vec<Path>> = Vec::with_capacity(explore_to);
    fwd_levels.push(seed_frontier(&mut ctx, &edges, Direction::Forward));
    bwd_levels.push(seed_frontier(&mut ctx, &edges, Direction::Backward));
    for len in 1..explore_to {
        let fwd_next = expand_frontier(
            &mut ctx,
            &edges,
            &fwd_levels[len - 1],
            len,
            true,
            &mut explanations,
        );
        let bwd_next = expand_frontier(
            &mut ctx,
            &edges,
            &bwd_levels[len - 1],
            len,
            true,
            &mut explanations,
        );
        fwd_levels.push(fwd_next);
        bwd_levels.push(bwd_next);
    }

    // ---- Phase 2: bridge on a shared edge, lengths ℓ+1 ..= 2ℓ−1.
    let fwd_ell = fwd_levels.last().map(Vec::as_slice).unwrap_or(&[]);
    // Backward paths of length k, indexed by their last edge `(from, to)`.
    let index_by_last = |paths: &[Path]| -> HashMap<(AttrRef, AttrRef), Vec<Path>> {
        let mut idx: HashMap<(AttrRef, AttrRef), Vec<Path>> = HashMap::new();
        for p in paths {
            let last = *p.edges().last().expect("paths are never empty");
            idx.entry((last.from, last.to)).or_default().push(p.clone());
        }
        idx
    };

    for n in (ell + 1)..=config.max_length.min(2 * ell - 1) {
        let started = Instant::now();
        let k = n - ell + 1; // backward half length, 2 ≤ k ≤ ℓ
        let bwd_k = bwd_levels.get(k - 1).map(Vec::as_slice).unwrap_or(&[]);
        let idx = index_by_last(bwd_k);
        let mut batch: Vec<(Path, CanonicalKey)> = Vec::new();
        for f in fwd_ell {
            let last = *f.edges().last().expect("paths are never empty");
            // The bridge edge is shared: the backward path's last edge must
            // be the same condition traversed the other way.
            let Some(cands) = idx.get(&(last.to, last.from)) else {
                continue;
            };
            for b in cands {
                batch.extend(glue_candidate(&mut ctx, f, b, None, n));
            }
        }
        admit_batch(&mut ctx, &mut explanations, batch, n);
        ctx.stats.at(n).elapsed += started.elapsed();
    }

    // ---- Phase 3: alias merge (n = 2ℓ) and one middle edge (n = 2ℓ+1).
    let bwd_ell = bwd_levels.last().map(Vec::as_slice).unwrap_or(&[]);
    // Index the backward frontier by its tip table so each forward path
    // only meets compatible partners.
    let mut bwd_by_tip: HashMap<eba_relational::TableId, Vec<&Path>> = HashMap::new();
    for b in bwd_ell {
        bwd_by_tip.entry(b.tip().table).or_default().push(b);
    }
    if config.max_length >= 2 * ell {
        let n = 2 * ell;
        let started = Instant::now();
        let mut batch: Vec<(Path, CanonicalKey)> = Vec::new();
        for f in fwd_ell {
            if let Some(partners) = bwd_by_tip.get(&f.tip().table) {
                for b in partners {
                    batch.extend(glue_candidate(&mut ctx, f, b, None, n));
                }
            }
        }
        admit_batch(&mut ctx, &mut explanations, batch, n);
        ctx.stats.at(n).elapsed += started.elapsed();
    }
    if config.max_length > 2 * ell {
        let n = 2 * ell + 1;
        let started = Instant::now();
        let mut batch: Vec<(Path, CanonicalKey)> = Vec::new();
        for f in fwd_ell {
            for mid in edges.from_table(f.tip().table) {
                if let Some(partners) = bwd_by_tip.get(&mid.to.table) {
                    for b in partners {
                        batch.extend(glue_candidate(&mut ctx, f, b, Some(*mid), n));
                    }
                }
            }
        }
        admit_batch(&mut ctx, &mut explanations, batch, n);
        ctx.stats.at(n).elapsed += started.elapsed();
    }

    Ok(finish(ctx, explanations))
}

/// Glues a forward path, an optional middle edge, and a (reversed) backward
/// path into a candidate template of length `n`, returning it keyed for
/// batch evaluation (`None` when the gluing is structurally impossible or
/// the result violates the restrictions).
///
/// Without a middle edge the gluing mode depends on lengths: when
/// `n = f.len + b.len − 1` the two halves share their last edge (phase 2);
/// when `n = f.len + b.len` the tips merge into one tuple variable
/// (phase 3).
fn glue_candidate(
    ctx: &mut Ctx<'_>,
    fwd: &Path,
    bwd: &Path,
    middle: Option<crate::edge::Edge>,
    n: usize,
) -> Option<(Path, CanonicalKey)> {
    let shared_edge = middle.is_none() && n == fwd.length() + bwd.length() - 1;
    let mut path = fwd.clone();
    if let Some(mid) = middle {
        path = path.extended(mid).ok()?;
    }
    // Append the backward half reversed, skipping its last edge when it is
    // the shared bridge edge.
    let btake = if shared_edge {
        bwd.length() - 1
    } else {
        bwd.length()
    };
    for i in (1..btake).rev() {
        path = path.extended(bwd.edges()[i].reversed()).ok()?;
    }
    let closing = bwd.edges()[0].reversed();
    let closed = path.closed_by(closing, ctx.spec).ok()?;
    debug_assert_eq!(closed.length(), n, "bridged candidate length mismatch");
    if !closed.is_restricted(
        ctx.spec.table,
        ctx.config.max_length,
        ctx.config.max_tables,
        &ctx.config.exempt_tables,
    ) {
        return None;
    }
    ctx.stats.at(n).candidates += 1;
    let key = canonical_key(&closed, ctx.spec);
    Some((closed, key))
}

/// Evaluates one bridging round's glued candidates as a single batch
/// through [`Ctx::supports_of`] — the same shared-engine fan-out the
/// bottom-up rounds use — and admits them in generation order, exactly as
/// the one-at-a-time loop did.
fn admit_batch(
    ctx: &mut Ctx<'_>,
    explanations: &mut HashMap<CanonicalKey, MinedTemplate>,
    batch: Vec<(Path, CanonicalKey)>,
    n: usize,
) {
    let keyed: Vec<(&Path, &CanonicalKey)> = batch.iter().map(|(p, k)| (p, k)).collect();
    let supports = ctx.supports_of(&keyed, n);
    for ((path, key), support) in batch.into_iter().zip(supports) {
        if support >= ctx.threshold {
            explanations
                .entry(key.clone())
                .or_insert(MinedTemplate { path, support, key });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mining::mine_one_way;
    use eba_relational::{DataType, Value};

    fn figure3() -> (Database, LogSpec) {
        let mut db = Database::new();
        db.create_table(
            "Log",
            &[
                ("Lid", DataType::Int),
                ("Date", DataType::Date),
                ("User", DataType::Int),
                ("Patient", DataType::Int),
            ],
        )
        .unwrap();
        db.create_table(
            "Appointments",
            &[
                ("Patient", DataType::Int),
                ("Date", DataType::Date),
                ("Doctor", DataType::Int),
            ],
        )
        .unwrap();
        db.create_table(
            "Doctor_Info",
            &[("Doctor", DataType::Int), ("Department", DataType::Str)],
        )
        .unwrap();
        db.add_fk("Log", "Patient", "Appointments", "Patient")
            .unwrap();
        db.add_fk("Appointments", "Doctor", "Log", "User").unwrap();
        db.add_fk("Appointments", "Doctor", "Doctor_Info", "Doctor")
            .unwrap();
        db.add_fk("Doctor_Info", "Doctor", "Log", "User").unwrap();
        db.allow_self_join("Doctor_Info", "Department").unwrap();
        let ped = db.str_value("Pediatrics");
        let appt = db.table_id("Appointments").unwrap();
        let info = db.table_id("Doctor_Info").unwrap();
        let log = db.table_id("Log").unwrap();
        db.insert(appt, vec![Value::Int(10), Value::Date(1), Value::Int(1)])
            .unwrap();
        db.insert(appt, vec![Value::Int(11), Value::Date(2), Value::Int(2)])
            .unwrap();
        db.insert(info, vec![Value::Int(2), ped]).unwrap();
        db.insert(info, vec![Value::Int(1), ped]).unwrap();
        db.insert(
            log,
            vec![Value::Int(1), Value::Date(1), Value::Int(1), Value::Int(10)],
        )
        .unwrap();
        db.insert(
            log,
            vec![Value::Int(2), Value::Date(2), Value::Int(1), Value::Int(11)],
        )
        .unwrap();
        let spec = LogSpec::conventional(&db).unwrap();
        (db, spec)
    }

    #[test]
    fn bridge_agrees_with_one_way_for_all_ells() {
        let (db, spec) = figure3();
        let config = MiningConfig {
            support_frac: 0.5,
            max_length: 4,
            max_tables: 3,
            ..MiningConfig::default()
        };
        let reference = mine_one_way(&db, &spec, &config);
        for ell in [2, 3, 4] {
            let bridged = mine_bridge(&db, &spec, &config, ell).unwrap();
            assert_eq!(
                bridged.key_set(),
                reference.key_set(),
                "Bridge-{ell} differs from one-way"
            );
        }
    }

    #[test]
    fn template_b_is_found_by_bridging_example_3_3() {
        // Example 3.3: template (B) is created by bridging two length-3
        // partial paths on the department self-join condition.
        let (db, spec) = figure3();
        let config = MiningConfig {
            support_frac: 0.9, // only (B) has 100% support
            max_length: 4,
            max_tables: 3,
            ..MiningConfig::default()
        };
        let bridged = mine_bridge(&db, &spec, &config, 3).unwrap();
        assert!(bridged.of_length(4).next().is_some());
    }

    #[test]
    fn rejects_uncoverable_lengths() {
        let (db, spec) = figure3();
        let config = MiningConfig {
            max_length: 6,
            ..MiningConfig::default()
        };
        assert!(mine_bridge(&db, &spec, &config, 2).is_err());
        let config = MiningConfig {
            max_length: 5,
            ..MiningConfig::default()
        };
        assert!(mine_bridge(&db, &spec, &config, 2).is_ok());
        assert!(mine_bridge(&db, &spec, &config, 1).is_err());
    }

    #[test]
    fn bridge_tests_fewer_candidates_than_two_way() {
        let (db, spec) = figure3();
        let config = MiningConfig {
            support_frac: 0.5,
            max_length: 4,
            max_tables: 3,
            opt_skip: false,
            ..MiningConfig::default()
        };
        let two = crate::mining::mine_two_way(&db, &spec, &config);
        let bridged = mine_bridge(&db, &spec, &config, 2).unwrap();
        let c_two: usize = two.stats.per_length.iter().map(|s| s.candidates).sum();
        let c_bridge: usize = bridged.stats.per_length.iter().map(|s| s.candidates).sum();
        assert!(
            c_bridge < c_two,
            "Bridge-2 candidates {c_bridge} ≥ two-way {c_two}"
        );
    }
}
