//! Mining frequent explanation templates (§3 of the paper).
//!
//! Given a database, its access log, and the schema-graph edges of Def. 5
//! (key/FK joins, administrator relationships, allowed self-joins), find
//! every *restricted simple explanation template* — path length at most
//! `M`, at most `T` distinct tables — whose support (distinct log ids
//! explained) is at least `s%` of the log.
//!
//! Three algorithms are provided, all returning the **same template set**
//! (§5.3.3 confirms this experimentally; our integration tests assert it):
//!
//! * [`mine_one_way`] — Algorithm 1: grow supported paths from
//!   `Log.Patient`, one edge per round, pruning by the monotonicity of
//!   support; a path that reaches `Log.User` is an explanation.
//! * [`mine_two_way`] — additionally grows paths backward from `Log.User`;
//!   either frontier can close a template.
//! * [`mine_bridge`] — two-way exploration to length ℓ, then *bridging*:
//!   forward and backward partial paths that share an equal bridge edge are
//!   concatenated into candidate templates of length up to `2ℓ−1` (and via
//!   direct alias merges / single middle edges, up to `2ℓ+1`), whose
//!   support is then verified. Pushing the start/end constraints down this
//!   way shrinks the candidate space (§3.3.1).
//!
//! The §3.2.1 optimizations — canonical-form support caching,
//! distinct-projection de-duplication, and estimator-driven skipping of
//! non-selective paths — are individually toggleable in [`MiningConfig`]
//! for the ablation benchmarks, and none of them changes the mined set.

mod bridge;
pub mod decorate;
mod one_way;
mod shared;
mod two_way;

pub use bridge::mine_bridge;
pub use decorate::{refine, refine_with, DecoratedTemplate, DecorationCandidate};
pub use one_way::mine_one_way;
pub use two_way::mine_two_way;

use crate::canonical::CanonicalKey;
use crate::path::Path;
use eba_relational::TableId;
use std::time::Duration;

/// Mining parameters (Def. 5 plus the optimization toggles).
#[derive(Debug, Clone)]
pub struct MiningConfig {
    /// Minimum support as a fraction of the (anchor-filtered) log, the
    /// paper's `s%`. The experiments use 1%.
    pub support_frac: f64,
    /// Maximum path length `M` (number of join conditions).
    pub max_length: usize,
    /// Maximum number of distinct tables `T` referenced (self-joins count
    /// once; the anchor log counts).
    pub max_tables: usize,
    /// Tables excluded from the `T` limit (the paper exempts its
    /// audit-id↔caregiver-id mapping table).
    pub exempt_tables: Vec<TableId>,
    /// §3.2.1 optimization 1: cache support values under canonical
    /// selection-condition form.
    pub opt_cache: bool,
    /// §3.2.1 optimization 2: evaluate over per-table distinct projections.
    pub opt_dedup: bool,
    /// §3.2.1 optimization 3: skip support evaluation of open paths the
    /// estimator predicts to be non-selective, passing them straight to the
    /// next round. Completed explanations are never skipped.
    pub opt_skip: bool,
    /// The estimator safety factor `c` (skip only when the estimate exceeds
    /// `c · S`); the paper uses a constant "like 10".
    pub skip_multiplier: f64,
    /// Evaluate candidates through the shared
    /// [`eba_relational::Engine`]: a per-run interned snapshot with a
    /// memoized step-map cache, batch-evaluating each round's candidate
    /// frontier in parallel. Off, every candidate re-scans its tables
    /// through [`eba_relational::ChainQuery::support`] (the pre-engine
    /// behaviour, kept for benchmarking the engine itself). Never changes
    /// the mined set.
    pub opt_engine: bool,
    /// Allow mined paths to traverse *fresh aliases of the log table*
    /// mid-path (e.g. "…the doctor accessed another patient who had an
    /// appointment with the accessing user"). Off by default: the paper's
    /// template counts (Table 1) indicate its miner did not chain through
    /// additional log tuple variables, and such templates are rarely
    /// meaningful to an administrator. Hand-crafted templates (like
    /// decorated repeat access) may still reference the log.
    pub allow_log_aliases: bool,
}

impl Default for MiningConfig {
    fn default() -> Self {
        MiningConfig {
            support_frac: 0.01,
            max_length: 4,
            max_tables: 3,
            exempt_tables: Vec::new(),
            opt_cache: true,
            opt_dedup: true,
            opt_skip: true,
            skip_multiplier: 10.0,
            opt_engine: true,
            allow_log_aliases: false,
        }
    }
}

/// Per-round counters, one entry per path length.
#[derive(Debug, Clone, Default)]
pub struct LengthStats {
    /// Path length these counters describe.
    pub length: usize,
    /// Candidate paths generated at this length.
    pub candidates: usize,
    /// Support queries actually evaluated on the database.
    pub support_queries: usize,
    /// Candidates answered from the canonical-form cache.
    pub cache_hits: usize,
    /// Open paths passed to the next round without evaluation (opt. 3).
    pub skipped: usize,
    /// Wall-clock time spent on this length.
    pub elapsed: Duration,
}

/// Counters for a whole mining run.
#[derive(Debug, Clone, Default)]
pub struct MiningStats {
    /// Per-length statistics in increasing length order.
    pub per_length: Vec<LengthStats>,
}

impl MiningStats {
    pub(crate) fn at(&mut self, length: usize) -> &mut LengthStats {
        if let Some(i) = self.per_length.iter().position(|s| s.length == length) {
            return &mut self.per_length[i];
        }
        self.per_length.push(LengthStats {
            length,
            ..LengthStats::default()
        });
        self.per_length.sort_by_key(|s| s.length);
        let i = self
            .per_length
            .iter()
            .position(|s| s.length == length)
            .expect("just inserted");
        &mut self.per_length[i]
    }

    /// Total wall-clock time.
    pub fn total_elapsed(&self) -> Duration {
        self.per_length.iter().map(|s| s.elapsed).sum()
    }

    /// `(length, cumulative elapsed)` series — the exact shape of the
    /// paper's Figure 13.
    pub fn cumulative(&self) -> Vec<(usize, Duration)> {
        let mut acc = Duration::ZERO;
        self.per_length
            .iter()
            .map(|s| {
                acc += s.elapsed;
                (s.length, acc)
            })
            .collect()
    }

    /// Total support queries evaluated.
    pub fn support_queries(&self) -> usize {
        self.per_length.iter().map(|s| s.support_queries).sum()
    }

    /// Total cache hits.
    pub fn cache_hits(&self) -> usize {
        self.per_length.iter().map(|s| s.cache_hits).sum()
    }
}

/// One discovered template with its support.
#[derive(Debug, Clone)]
pub struct MinedTemplate {
    /// The closed path.
    pub path: Path,
    /// Distinct log ids explained.
    pub support: usize,
    /// Canonical identity (used to compare template sets across
    /// algorithms and time periods).
    pub key: CanonicalKey,
}

impl MinedTemplate {
    /// Template length.
    pub fn length(&self) -> usize {
        self.path.length()
    }
}

/// Output of a mining run.
#[derive(Debug, Clone)]
pub struct MiningResult {
    /// Discovered templates, sorted by (length, canonical key).
    pub templates: Vec<MinedTemplate>,
    /// Performance counters.
    pub stats: MiningStats,
    /// The absolute support threshold `S = ⌈s · |log|⌉` that was applied.
    pub threshold: usize,
    /// Distinct anchor log ids (the support denominator).
    pub anchor_lids: usize,
}

impl MiningResult {
    /// Templates of exactly this length.
    pub fn of_length(&self, length: usize) -> impl Iterator<Item = &MinedTemplate> {
        self.templates.iter().filter(move |t| t.length() == length)
    }

    /// `(length, count)` pairs, ascending — the rows of the paper's Table 1.
    pub fn counts_by_length(&self) -> Vec<(usize, usize)> {
        let mut counts: std::collections::BTreeMap<usize, usize> = Default::default();
        for t in &self.templates {
            *counts.entry(t.length()).or_default() += 1;
        }
        counts.into_iter().collect()
    }

    /// The canonical keys of the mined set (for cross-run comparison, e.g.
    /// Table 1's "common templates" column).
    pub fn key_set(&self) -> std::collections::BTreeSet<CanonicalKey> {
        self.templates.iter().map(|t| t.key.clone()).collect()
    }
}
