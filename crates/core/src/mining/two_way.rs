//! Two-way template mining (§3.3).
//!
//! "The two-way algorithm constructs paths in two directions: from the
//! start to the end, and from the end to the start." Both frontiers grow
//! one edge per round; a path from either frontier that lands on the
//! anchor's opposite attribute is an explanation template (closed backward
//! paths are normalized into forward form, and the canonical-form key
//! deduplicates templates discovered from both sides).
//!
//! On its own the two-way algorithm explores strictly more paths than
//! one-way (every supported backward path in addition to the forward
//! ones) — the paper's Figure 13 indeed measures it slower. Its value is
//! as the first phase of [`crate::mining::mine_bridge`].

use crate::edge::EdgeSet;
use crate::log_spec::LogSpec;
use crate::mining::shared::{expand_frontier, finish, seed_frontier, Ctx};
use crate::mining::{MiningConfig, MiningResult};
use crate::path::Direction;
use eba_relational::Database;
use std::collections::HashMap;

/// Mines supported explanation templates growing paths from both
/// `Log.Patient` (forward) and `Log.User` (backward).
pub fn mine_two_way(db: &Database, spec: &LogSpec, config: &MiningConfig) -> MiningResult {
    let (result, _, _) = mine_two_way_with_frontiers(db, spec, config, config.max_length);
    result
}

/// Two-way mining that also returns the final open frontiers (all supported
/// open paths of length exactly `frontier_len`), for bridging.
pub(crate) fn mine_two_way_with_frontiers(
    db: &Database,
    spec: &LogSpec,
    config: &MiningConfig,
    frontier_len: usize,
) -> (MiningResult, Vec<crate::path::Path>, Vec<crate::path::Path>) {
    let edges = EdgeSet::build(db);
    let mut ctx = Ctx::new(db, spec, config);
    let mut explanations = HashMap::new();
    let mut fwd = seed_frontier(&mut ctx, &edges, Direction::Forward);
    let mut bwd = seed_frontier(&mut ctx, &edges, Direction::Backward);
    for len in 1..frontier_len.max(1) {
        let keep_open = len < frontier_len;
        fwd = expand_frontier(&mut ctx, &edges, &fwd, len, keep_open, &mut explanations);
        bwd = expand_frontier(&mut ctx, &edges, &bwd, len, keep_open, &mut explanations);
        if fwd.is_empty() && bwd.is_empty() {
            break;
        }
    }
    (finish(ctx, explanations), fwd, bwd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mining::mine_one_way;
    use eba_relational::{DataType, Value};

    fn figure3() -> (Database, LogSpec) {
        let mut db = Database::new();
        db.create_table(
            "Log",
            &[
                ("Lid", DataType::Int),
                ("Date", DataType::Date),
                ("User", DataType::Int),
                ("Patient", DataType::Int),
            ],
        )
        .unwrap();
        db.create_table(
            "Appointments",
            &[
                ("Patient", DataType::Int),
                ("Date", DataType::Date),
                ("Doctor", DataType::Int),
            ],
        )
        .unwrap();
        db.create_table(
            "Doctor_Info",
            &[("Doctor", DataType::Int), ("Department", DataType::Str)],
        )
        .unwrap();
        db.add_fk("Log", "Patient", "Appointments", "Patient")
            .unwrap();
        db.add_fk("Appointments", "Doctor", "Log", "User").unwrap();
        db.add_fk("Appointments", "Doctor", "Doctor_Info", "Doctor")
            .unwrap();
        db.add_fk("Doctor_Info", "Doctor", "Log", "User").unwrap();
        db.allow_self_join("Doctor_Info", "Department").unwrap();
        let ped = db.str_value("Pediatrics");
        let appt = db.table_id("Appointments").unwrap();
        let info = db.table_id("Doctor_Info").unwrap();
        let log = db.table_id("Log").unwrap();
        db.insert(appt, vec![Value::Int(10), Value::Date(1), Value::Int(1)])
            .unwrap();
        db.insert(appt, vec![Value::Int(11), Value::Date(2), Value::Int(2)])
            .unwrap();
        db.insert(info, vec![Value::Int(2), ped]).unwrap();
        db.insert(info, vec![Value::Int(1), ped]).unwrap();
        db.insert(
            log,
            vec![Value::Int(1), Value::Date(1), Value::Int(1), Value::Int(10)],
        )
        .unwrap();
        db.insert(
            log,
            vec![Value::Int(2), Value::Date(2), Value::Int(1), Value::Int(11)],
        )
        .unwrap();
        let spec = LogSpec::conventional(&db).unwrap();
        (db, spec)
    }

    #[test]
    fn agrees_with_one_way() {
        let (db, spec) = figure3();
        let config = MiningConfig {
            support_frac: 0.5,
            max_length: 4,
            max_tables: 3,
            ..MiningConfig::default()
        };
        let one = mine_one_way(&db, &spec, &config);
        let two = mine_two_way(&db, &spec, &config);
        assert_eq!(one.key_set(), two.key_set());
        assert_eq!(one.templates.len(), two.templates.len());
        // Same supports per key.
        for (a, b) in one.templates.iter().zip(&two.templates) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.support, b.support);
        }
    }

    #[test]
    fn considers_more_initial_edges_than_one_way() {
        let (db, spec) = figure3();
        let config = MiningConfig {
            support_frac: 0.5,
            max_length: 3,
            max_tables: 3,
            opt_skip: false,
            ..MiningConfig::default()
        };
        let one = mine_one_way(&db, &spec, &config);
        let two = mine_two_way(&db, &spec, &config);
        // The paper: "the one-way algorithm was faster than the two-way
        // algorithm because the two-way algorithm considers more initial
        // edges". Our proxy: candidate counts.
        let c1: usize = one.stats.per_length.iter().map(|s| s.candidates).sum();
        let c2: usize = two.stats.per_length.iter().map(|s| s.candidates).sum();
        assert!(c2 > c1, "two-way candidates {c2} ≤ one-way {c1}");
    }

    #[test]
    fn frontiers_contain_supported_open_paths() {
        let (db, spec) = figure3();
        let config = MiningConfig {
            support_frac: 0.5,
            max_length: 4,
            max_tables: 3,
            ..MiningConfig::default()
        };
        let (_, fwd, bwd) = mine_two_way_with_frontiers(&db, &spec, &config, 2);
        assert!(fwd.iter().all(|p| p.length() == 2 && !p.is_closed()));
        assert!(bwd.iter().all(|p| p.length() == 2 && !p.is_closed()));
        assert!(!fwd.is_empty());
        assert!(!bwd.is_empty());
    }
}
