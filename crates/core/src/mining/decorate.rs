//! Mining *decorated* templates — the paper's stated future work.
//!
//! §3.1 leaves "developing algorithms for mining more complex (decorated)
//! explanation templates to future work", and §5.3.4 sketches the use case:
//! "in the future, we will consider how to mine decorated explanation
//! templates that restrict the groups that can be used to better control
//! precision" — e.g. group information at one hierarchy depth suffices for
//! appointment-based explanations, while another depth is needed for
//! medication-based ones.
//!
//! This module implements that refinement: given mined (simple) templates
//! and a *decoration candidate* — a column of some table together with the
//! constants it may be pinned to, ordered from most to least restrictive —
//! [`refine`] produces, for each template that traverses the candidate's
//! table, the most restrictive decorated variant that still meets the
//! support threshold. Support monotonicity makes the scan sound: once a
//! decoration value meets the threshold, looser values can only explain
//! more.

use crate::canonical::canonical_key;
use crate::log_spec::LogSpec;
use crate::mining::{MinedTemplate, MiningConfig};
use crate::path::Path;
use eba_relational::{
    ChainQuery, CmpOp, ColId, Database, Engine, EvalOptions, Rhs, StepFilter, TableId, Value,
};

/// A column that may be pinned to a constant on every tuple variable of its
/// table (e.g. `Groups.Depth` pinned to one hierarchy level).
#[derive(Debug, Clone)]
pub struct DecorationCandidate {
    /// Table whose tuple variables receive the decoration.
    pub table: TableId,
    /// Column to pin.
    pub col: ColId,
    /// Constants to try, **most restrictive first** (for `Groups.Depth`,
    /// deepest level first). The first value meeting the threshold wins.
    pub values: Vec<Value>,
}

impl DecorationCandidate {
    /// The candidate for a `Groups(Depth, Group_id, User)` table: depths
    /// from deepest to shallowest (excluding the degenerate depth 0, which
    /// the table does not store).
    pub fn group_depths(db: &Database, max_depth: usize) -> eba_relational::Result<Self> {
        let table = db.table_id("Groups")?;
        let col = db.table(table).schema().col("Depth").ok_or_else(|| {
            eba_relational::Error::UnknownColumn {
                table: "Groups".into(),
                column: "Depth".into(),
            }
        })?;
        Ok(DecorationCandidate {
            table,
            col,
            values: (1..=max_depth)
                .rev()
                .map(|d| Value::Int(d as i64))
                .collect(),
        })
    }
}

/// One refined template: the decorated path plus its provenance.
#[derive(Debug, Clone)]
pub struct DecoratedTemplate {
    /// The decorated path.
    pub path: Path,
    /// Support of the decorated template.
    pub support: usize,
    /// The decoration constant that was chosen.
    pub pinned: Value,
    /// Canonical key of the *undecorated* template it refines.
    pub base_key: crate::canonical::CanonicalKey,
}

/// Refines `templates` with `candidate`: every template whose path visits
/// the candidate's table gets the most restrictive decoration that keeps
/// support at or above `threshold`. Templates not touching the table (or
/// where even the loosest value fails) are omitted from the output.
///
/// Evaluation proceeds value-round by value-round (most restrictive value
/// first, across all still-unresolved templates), so each round is one
/// batch the shared [`Engine`] evaluates in parallel — the same queries,
/// in the same monotone order, as the one-at-a-time scan.
pub fn refine(
    db: &Database,
    spec: &LogSpec,
    templates: &[MinedTemplate],
    candidate: &DecorationCandidate,
    threshold: usize,
    config: &MiningConfig,
) -> Vec<DecoratedTemplate> {
    let engine = config.opt_engine.then(|| Engine::new(db));
    refine_with(
        db,
        spec,
        templates,
        candidate,
        threshold,
        config,
        engine.as_ref(),
    )
}

/// [`refine`] against a caller-provided engine: a caller that already
/// holds an [`Engine`] over this database (e.g. one built per auditing
/// session and used for several refinements) reuses its warm snapshot and
/// step-map cache instead of paying [`refine`]'s fresh full-database scan.
/// `None` evaluates through the per-query row evaluator regardless of
/// `config.opt_engine`.
pub fn refine_with(
    db: &Database,
    spec: &LogSpec,
    templates: &[MinedTemplate],
    candidate: &DecorationCandidate,
    threshold: usize,
    config: &MiningConfig,
    engine: Option<&Engine>,
) -> Vec<DecoratedTemplate> {
    let opts = EvalOptions {
        dedup: config.opt_dedup,
    };
    // Templates still looking for their decoration value, with the aliases
    // (1-based) of the candidate table on their path.
    let mut pending: Vec<(&MinedTemplate, Vec<usize>)> = templates
        .iter()
        .filter_map(|t| {
            let aliases: Vec<usize> = t
                .path
                .tuple_vars()
                .iter()
                .enumerate()
                .filter(|(_, table)| **table == candidate.table)
                .map(|(i, _)| i + 1)
                .collect();
            (!aliases.is_empty()).then_some((t, aliases))
        })
        .collect();

    let mut out = Vec::new();
    for v in &candidate.values {
        if pending.is_empty() {
            break;
        }
        let decorated: Vec<Path> = pending
            .iter()
            .map(|(t, aliases)| {
                let mut path = t.path.clone();
                for &alias in aliases {
                    path = path
                        .decorated(
                            alias,
                            StepFilter {
                                col: candidate.col,
                                op: CmpOp::Eq,
                                rhs: Rhs::Const(*v),
                            },
                        )
                        .expect("alias indexes come from the path itself");
                }
                path
            })
            .collect();
        let queries: Vec<ChainQuery> = decorated.iter().map(|p| p.to_chain_query(spec)).collect();
        let supports: Vec<usize> = match engine {
            Some(engine) => engine
                .support_many(db, &queries, opts)
                .into_iter()
                .map(|r| r.expect("decorating a valid path keeps it valid"))
                .collect(),
            None => queries
                .iter()
                .map(|q| {
                    q.support(db, opts)
                        .expect("decorating a valid path keeps it valid")
                })
                .collect(),
        };

        let mut still_pending = Vec::with_capacity(pending.len());
        for (((t, aliases), path), support) in pending.into_iter().zip(decorated).zip(supports) {
            if support >= threshold {
                out.push(DecoratedTemplate {
                    path,
                    support,
                    pinned: *v,
                    base_key: t.key.clone(),
                });
            } else {
                still_pending.push((t, aliases));
            }
        }
        pending = still_pending;
    }
    out.sort_by(|a, b| {
        (a.path.length(), canonical_key(&a.path, spec))
            .cmp(&(b.path.length(), canonical_key(&b.path, spec)))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mining::{mine_one_way, MiningConfig};
    use eba_relational::DataType;

    /// A database where depth-2 groups explain fewer accesses than
    /// depth-1: patients 1..4, users 1..4; user 1 has appointments; users
    /// 2..4 access because they share a (depth-dependent) group with
    /// user 1.
    fn grouped_db() -> (Database, LogSpec) {
        let mut db = Database::new();
        db.create_table(
            "Log",
            &[
                ("Lid", DataType::Int),
                ("Date", DataType::Date),
                ("User", DataType::Int),
                ("Patient", DataType::Int),
            ],
        )
        .unwrap();
        db.create_table(
            "Appointments",
            &[("Patient", DataType::Int), ("Doctor", DataType::Int)],
        )
        .unwrap();
        db.create_table(
            "Groups",
            &[
                ("Depth", DataType::Int),
                ("Group_id", DataType::Int),
                ("User", DataType::Int),
            ],
        )
        .unwrap();
        let log = db.table_id("Log").unwrap();
        let appt = db.table_id("Appointments").unwrap();
        let groups = db.table_id("Groups").unwrap();
        // Appointments: every patient with doctor (user 1).
        for p in 1..=4i64 {
            db.insert(appt, vec![Value::Int(p), Value::Int(1)]).unwrap();
        }
        // Groups: depth 1 = {1,2,3} and {4}; depth 2 = {1,2} and {3} and {4}.
        for (depth, gid, user) in [
            (1, 10, 1),
            (1, 10, 2),
            (1, 10, 3),
            (1, 11, 4),
            (2, 20, 1),
            (2, 20, 2),
            (2, 21, 3),
            (2, 22, 4),
        ] {
            db.insert(
                groups,
                vec![Value::Int(depth), Value::Int(gid), Value::Int(user)],
            )
            .unwrap();
        }
        // Log: users 2 and 3 access patients (team accesses).
        for (lid, user, patient) in [(1, 2, 1), (2, 3, 2), (3, 2, 3), (4, 3, 4)] {
            db.insert(
                log,
                vec![
                    Value::Int(lid),
                    Value::Date(lid),
                    Value::Int(user),
                    Value::Int(patient),
                ],
            )
            .unwrap();
        }
        db.add_fk("Log", "Patient", "Appointments", "Patient")
            .unwrap();
        db.add_fk("Appointments", "Doctor", "Log", "User").unwrap();
        db.add_fk("Appointments", "Doctor", "Groups", "User")
            .unwrap();
        db.add_fk("Groups", "User", "Log", "User").unwrap();
        db.allow_self_join("Groups", "Group_id").unwrap();
        let spec = LogSpec::conventional(&db).unwrap();
        (db, spec)
    }

    fn mined(db: &Database, spec: &LogSpec) -> (Vec<MinedTemplate>, MiningConfig) {
        let config = MiningConfig {
            support_frac: 0.5, // threshold = 2 of 4 accesses
            max_length: 4,
            max_tables: 3,
            ..MiningConfig::default()
        };
        let result = mine_one_way(db, spec, &config);
        (result.templates, config)
    }

    #[test]
    fn refinement_pins_the_deepest_supported_depth() {
        let (db, spec) = grouped_db();
        let (templates, config) = mined(&db, &spec);
        // The undecorated group template (length 4) is supported: all four
        // accesses go through depth-1 group 10.
        assert!(templates.iter().any(|t| t.length() == 4));
        let candidate = DecorationCandidate::group_depths(&db, 2).unwrap();
        let refined = refine(&db, &spec, &templates, &candidate, 2, &config);
        assert!(!refined.is_empty());
        // Depth 2 only explains accesses by user 2 (group {1,2}): support 2
        // — exactly at threshold, so depth 2 is chosen over depth 1.
        let group_refined = refined
            .iter()
            .find(|d| d.path.length() == 4)
            .expect("group template refined");
        assert_eq!(group_refined.pinned, Value::Int(2));
        assert_eq!(group_refined.support, 2);
    }

    #[test]
    fn higher_threshold_falls_back_to_shallower_depth() {
        let (db, spec) = grouped_db();
        let (templates, config) = mined(&db, &spec);
        let candidate = DecorationCandidate::group_depths(&db, 2).unwrap();
        // Threshold 4: only depth 1 explains all four accesses.
        let refined = refine(&db, &spec, &templates, &candidate, 4, &config);
        let group_refined = refined
            .iter()
            .find(|d| d.path.length() == 4)
            .expect("group template refined");
        assert_eq!(group_refined.pinned, Value::Int(1));
        assert_eq!(group_refined.support, 4);
    }

    #[test]
    fn templates_without_the_table_are_skipped() {
        let (db, spec) = grouped_db();
        let (templates, config) = mined(&db, &spec);
        let candidate = DecorationCandidate::group_depths(&db, 2).unwrap();
        let refined = refine(&db, &spec, &templates, &candidate, 1, &config);
        // Every refined path traverses Groups.
        let groups = db.table_id("Groups").unwrap();
        for d in &refined {
            assert!(d.path.tuple_vars().contains(&groups));
            assert!(!d.path.decorations().is_empty());
        }
        // And none of the non-Groups templates appear.
        assert!(refined.len() <= templates.len());
    }

    #[test]
    fn unsatisfiable_thresholds_yield_nothing() {
        let (db, spec) = grouped_db();
        let (templates, config) = mined(&db, &spec);
        let candidate = DecorationCandidate::group_depths(&db, 2).unwrap();
        let refined = refine(&db, &spec, &templates, &candidate, 100, &config);
        assert!(refined.is_empty());
    }

    #[test]
    fn decorated_support_never_exceeds_base_support() {
        let (db, spec) = grouped_db();
        let (templates, config) = mined(&db, &spec);
        let by_key: std::collections::HashMap<_, usize> = templates
            .iter()
            .map(|t| (t.key.clone(), t.support))
            .collect();
        let candidate = DecorationCandidate::group_depths(&db, 2).unwrap();
        for d in refine(&db, &spec, &templates, &candidate, 1, &config) {
            assert!(d.support <= by_key[&d.base_key]);
        }
    }
}
