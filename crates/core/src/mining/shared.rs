//! Machinery shared by the three mining algorithms: the evaluation context
//! (support cache, estimator, counters) and frontier expansion.

use crate::canonical::{canonical_key, CanonicalKey};
use crate::edge::EdgeSet;
use crate::log_spec::LogSpec;
use crate::mining::{MinedTemplate, MiningConfig, MiningStats};
use crate::path::{Direction, Path};
use eba_relational::{estimate_support_hinted, Database, EvalOptions};
use std::collections::HashMap;
use std::time::Instant;

/// Evaluation context for one mining run.
pub(crate) struct Ctx<'a> {
    pub db: &'a Database,
    pub spec: &'a LogSpec,
    pub config: &'a MiningConfig,
    pub threshold: usize,
    pub anchor_lids: usize,
    /// Fraction of the log passing the anchor filters (estimator hint).
    pub anchor_frac: f64,
    cache: HashMap<CanonicalKey, usize>,
    pub stats: MiningStats,
}

impl<'a> Ctx<'a> {
    pub fn new(db: &'a Database, spec: &'a LogSpec, config: &'a MiningConfig) -> Self {
        let anchor_lids = spec.anchor_lid_count(db);
        let total = db.table(spec.table).len().max(1);
        let threshold = ((config.support_frac * anchor_lids as f64).ceil() as usize).max(1);
        Ctx {
            db,
            spec,
            config,
            threshold,
            anchor_lids,
            anchor_frac: anchor_lids as f64 / total as f64,
            cache: HashMap::new(),
            stats: MiningStats::default(),
        }
    }

    fn eval_options(&self) -> EvalOptions {
        EvalOptions {
            dedup: self.config.opt_dedup,
        }
    }

    /// Support of a path, going through the canonical-form cache when
    /// enabled. Also returns the key so callers can dedupe.
    pub fn support_of(&mut self, path: &Path, length: usize) -> (usize, CanonicalKey) {
        let key = canonical_key(path, self.spec);
        if self.config.opt_cache {
            if let Some(&s) = self.cache.get(&key) {
                self.stats.at(length).cache_hits += 1;
                return (s, key);
            }
        }
        let q = path.to_chain_query(self.spec);
        let support = q
            .support(self.db, self.eval_options())
            .expect("paths constructed by the miner lower to valid queries");
        self.stats.at(length).support_queries += 1;
        if self.config.opt_cache {
            self.cache.insert(key.clone(), support);
        }
        (support, key)
    }

    /// §3.2.1 optimization 3: should this *open* path skip support
    /// evaluation this round? True when the estimator predicts at least
    /// `c · S` explained log ids.
    pub fn should_skip(&self, path: &Path) -> bool {
        if !self.config.opt_skip {
            return false;
        }
        let q = path.to_chain_query(self.spec);
        let est = estimate_support_hinted(self.db, &q, self.anchor_frac);
        est >= self.config.skip_multiplier * self.threshold as f64
    }
}

/// The opposite-anchor attribute a path of the given direction closes at.
fn close_target(spec: &LogSpec, dir: Direction) -> eba_relational::AttrRef {
    match dir {
        Direction::Forward => spec.end_attr(),
        Direction::Backward => spec.start_attr(),
    }
}

/// Seeds a frontier: supported length-1 paths leaving the anchor attribute
/// of `dir` ("an initial set of paths of length one are created by taking
/// the set of edges that begin with the start attribute").
pub(crate) fn seed_frontier(ctx: &mut Ctx<'_>, edges: &EdgeSet, dir: Direction) -> Vec<Path> {
    let started = Instant::now();
    let anchor = match dir {
        Direction::Forward => ctx.spec.start_attr(),
        Direction::Backward => ctx.spec.end_attr(),
    };
    let mut seen: HashMap<CanonicalKey, Path> = HashMap::new();
    for edge in edges.from_attr(anchor) {
        if edge.to.table == ctx.spec.table && !ctx.config.allow_log_aliases {
            continue; // a fresh log alias as the first hop
        }
        let Ok(path) = Path::seed(ctx.spec, dir, *edge) else {
            continue;
        };
        if !path.is_restricted(
            ctx.spec.table,
            ctx.config.max_length,
            ctx.config.max_tables,
            &ctx.config.exempt_tables,
        ) {
            continue;
        }
        ctx.stats.at(1).candidates += 1;
        if ctx.should_skip(&path) {
            ctx.stats.at(1).skipped += 1;
            let key = canonical_key(&path, ctx.spec);
            seen.entry(key).or_insert(path);
            continue;
        }
        let (support, key) = ctx.support_of(&path, 1);
        if support >= ctx.threshold {
            seen.entry(key).or_insert(path);
        }
    }
    let mut frontier: Vec<(CanonicalKey, Path)> = seen.into_iter().collect();
    frontier.sort_by(|a, b| a.0.cmp(&b.0));
    ctx.stats.at(1).elapsed += started.elapsed();
    frontier.into_iter().map(|(_, p)| p).collect()
}

/// Expands a frontier of open paths of length `len` by one edge. Closing
/// candidates (length `len+1`) that meet the threshold are recorded in
/// `explanations`; supported (or skipped) open continuations are returned
/// as the next frontier when `keep_open` allows it.
pub(crate) fn expand_frontier(
    ctx: &mut Ctx<'_>,
    edges: &EdgeSet,
    frontier: &[Path],
    len: usize,
    keep_open: bool,
    explanations: &mut HashMap<CanonicalKey, MinedTemplate>,
) -> Vec<Path> {
    let started = Instant::now();
    let next_len = len + 1;
    let mut next: HashMap<CanonicalKey, Path> = HashMap::new();
    for path in frontier {
        let tip_table = path.tip().table;
        for edge in edges.from_table(tip_table) {
            // (a) Closing candidate: the edge lands on the anchor's
            // opposite attribute.
            if edge.to == close_target(ctx.spec, path.direction()) {
                if let Ok(closed) = path.closed_by(*edge, ctx.spec) {
                    if closed.is_restricted(
                        ctx.spec.table,
                        ctx.config.max_length,
                        ctx.config.max_tables,
                        &ctx.config.exempt_tables,
                    ) {
                        ctx.stats.at(next_len).candidates += 1;
                        // Explanations are never skipped (§3.2.1).
                        let (support, key) = ctx.support_of(&closed, next_len);
                        if support >= ctx.threshold {
                            explanations.entry(key.clone()).or_insert(MinedTemplate {
                                path: closed,
                                support,
                                key,
                            });
                        }
                    }
                }
            }
            // (b) Continuation: the edge's target becomes a fresh tuple
            // variable. Fresh aliases of the log table are excluded unless
            // explicitly allowed (see `MiningConfig::allow_log_aliases`).
            if keep_open && (edge.to.table != ctx.spec.table || ctx.config.allow_log_aliases) {
                if let Ok(open) = path.extended(*edge) {
                    if !open.is_restricted(
                        ctx.spec.table,
                        ctx.config.max_length,
                        ctx.config.max_tables,
                        &ctx.config.exempt_tables,
                    ) {
                        continue;
                    }
                    ctx.stats.at(next_len).candidates += 1;
                    if ctx.should_skip(&open) {
                        ctx.stats.at(next_len).skipped += 1;
                        let key = canonical_key(&open, ctx.spec);
                        next.entry(key).or_insert(open);
                        continue;
                    }
                    let (support, key) = ctx.support_of(&open, next_len);
                    if support >= ctx.threshold {
                        next.entry(key).or_insert(open);
                    }
                }
            }
        }
    }
    let mut out: Vec<(CanonicalKey, Path)> = next.into_iter().collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    ctx.stats.at(next_len).elapsed += started.elapsed();
    out.into_iter().map(|(_, p)| p).collect()
}

/// Packages explanations + stats into a [`crate::mining::MiningResult`].
pub(crate) fn finish(
    ctx: Ctx<'_>,
    explanations: HashMap<CanonicalKey, MinedTemplate>,
) -> crate::mining::MiningResult {
    let mut templates: Vec<MinedTemplate> = explanations.into_values().collect();
    templates.sort_by(|a, b| (a.length(), &a.key).cmp(&(b.length(), &b.key)));
    crate::mining::MiningResult {
        templates,
        stats: ctx.stats,
        threshold: ctx.threshold,
        anchor_lids: ctx.anchor_lids,
    }
}
