//! Machinery shared by the three mining algorithms: the evaluation context
//! (engine, support cache, estimator, counters) and frontier expansion.
//!
//! Each mining round — the bottom-up frontiers *and* the bridging
//! algorithm's gluing phases — is evaluated in two phases: candidate
//! *generation* walks the frontier and the edge set (pure path algebra,
//! cheap), then the round's whole candidate batch is *evaluated* at once
//! through [`Ctx::supports_of`] — answering from the canonical-form cache
//! where possible and handing the rest to the shared
//! [`eba_relational::Engine`], which amortizes step-map construction across
//! candidates and fans evaluation out over threads. The phases preserve the
//! sequential algorithm's results and counters exactly: candidates are
//! thresholded in generation order, and same-round duplicates of a
//! canonical key count as cache hits just as they would when evaluated one
//! by one.

use crate::canonical::{canonical_key, CanonicalKey};
use crate::edge::EdgeSet;
use crate::log_spec::LogSpec;
use crate::mining::{MinedTemplate, MiningConfig, MiningStats};
use crate::path::{Direction, Path};
use eba_relational::{estimate_support_hinted, ChainQuery, Database, Engine, EvalOptions};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Evaluation context for one mining run.
pub(crate) struct Ctx<'a> {
    pub db: &'a Database,
    pub spec: &'a LogSpec,
    pub config: &'a MiningConfig,
    pub threshold: usize,
    pub anchor_lids: usize,
    /// Fraction of the log passing the anchor filters (estimator hint).
    pub anchor_frac: f64,
    /// The shared evaluation engine (`None` when `opt_engine` is off).
    engine: Option<Engine>,
    cache: HashMap<CanonicalKey, usize>,
    pub stats: MiningStats,
}

impl<'a> Ctx<'a> {
    pub fn new(db: &'a Database, spec: &'a LogSpec, config: &'a MiningConfig) -> Self {
        let anchor_lids = spec.anchor_lid_count(db);
        let total = db.table(spec.table).len().max(1);
        let threshold = ((config.support_frac * anchor_lids as f64).ceil() as usize).max(1);
        Ctx {
            db,
            spec,
            config,
            threshold,
            anchor_lids,
            anchor_frac: anchor_lids as f64 / total as f64,
            engine: config.opt_engine.then(|| Engine::new(db)),
            cache: HashMap::new(),
            stats: MiningStats::default(),
        }
    }

    fn eval_options(&self) -> EvalOptions {
        EvalOptions {
            dedup: self.config.opt_dedup,
        }
    }

    /// Supports of a whole round's candidates, in input order.
    ///
    /// With the canonical-form cache on, each distinct key is evaluated at
    /// most once (earlier rounds' results are reused, and same-round
    /// duplicates count as cache hits — identical to one-by-one
    /// evaluation). The queries actually evaluated go to the engine as one
    /// parallel batch.
    pub fn supports_of(
        &mut self,
        candidates: &[(&Path, &CanonicalKey)],
        length: usize,
    ) -> Vec<usize> {
        let mut out: Vec<Option<usize>> = vec![None; candidates.len()];
        let mut to_eval: Vec<usize> = Vec::new();
        if self.config.opt_cache {
            let mut scheduled: HashSet<&CanonicalKey> = HashSet::new();
            for (i, (_, key)) in candidates.iter().enumerate() {
                if let Some(&s) = self.cache.get(*key) {
                    self.stats.at(length).cache_hits += 1;
                    out[i] = Some(s);
                } else if scheduled.insert(*key) {
                    to_eval.push(i);
                } else {
                    // Same-round duplicate: filled from the cache below.
                    self.stats.at(length).cache_hits += 1;
                }
            }
        } else {
            to_eval.extend(0..candidates.len());
        }

        let queries: Vec<ChainQuery> = to_eval
            .iter()
            .map(|&i| candidates[i].0.to_chain_query(self.spec))
            .collect();
        let supports: Vec<usize> = match &self.engine {
            Some(engine) => engine
                .support_many(self.db, &queries, self.eval_options())
                .into_iter()
                .map(|r| r.expect("paths constructed by the miner lower to valid queries"))
                .collect(),
            None => queries
                .iter()
                .map(|q| {
                    q.support(self.db, self.eval_options())
                        .expect("paths constructed by the miner lower to valid queries")
                })
                .collect(),
        };
        self.stats.at(length).support_queries += to_eval.len();
        for (&i, &support) in to_eval.iter().zip(&supports) {
            out[i] = Some(support);
            if self.config.opt_cache {
                self.cache.insert(candidates[i].1.clone(), support);
            }
        }
        for (i, (_, key)) in candidates.iter().enumerate() {
            if out[i].is_none() {
                out[i] = Some(self.cache[*key]);
            }
        }
        out.into_iter()
            .map(|s| s.expect("every candidate resolved"))
            .collect()
    }

    /// §3.2.1 optimization 3: should this *open* path skip support
    /// evaluation this round? True when the estimator predicts at least
    /// `c · S` explained log ids.
    pub fn should_skip(&self, path: &Path) -> bool {
        if !self.config.opt_skip {
            return false;
        }
        let q = path.to_chain_query(self.spec);
        let est = estimate_support_hinted(self.db, &q, self.anchor_frac);
        est >= self.config.skip_multiplier * self.threshold as f64
    }
}

/// The opposite-anchor attribute a path of the given direction closes at.
fn close_target(spec: &LogSpec, dir: Direction) -> eba_relational::AttrRef {
    match dir {
        Direction::Forward => spec.end_attr(),
        Direction::Backward => spec.start_attr(),
    }
}

/// Seeds a frontier: supported length-1 paths leaving the anchor attribute
/// of `dir` ("an initial set of paths of length one are created by taking
/// the set of edges that begin with the start attribute").
pub(crate) fn seed_frontier(ctx: &mut Ctx<'_>, edges: &EdgeSet, dir: Direction) -> Vec<Path> {
    let started = Instant::now();
    let anchor = match dir {
        Direction::Forward => ctx.spec.start_attr(),
        Direction::Backward => ctx.spec.end_attr(),
    };
    let mut seen: HashMap<CanonicalKey, Path> = HashMap::new();
    let mut batch: Vec<Candidate> = Vec::new();
    for edge in edges.from_attr(anchor) {
        if edge.to.table == ctx.spec.table && !ctx.config.allow_log_aliases {
            continue; // a fresh log alias as the first hop
        }
        let Ok(path) = Path::seed(ctx.spec, dir, *edge) else {
            continue;
        };
        if !path.is_restricted(
            ctx.spec.table,
            ctx.config.max_length,
            ctx.config.max_tables,
            &ctx.config.exempt_tables,
        ) {
            continue;
        }
        ctx.stats.at(1).candidates += 1;
        let key = canonical_key(&path, ctx.spec);
        let skipped = ctx.should_skip(&path);
        if skipped {
            ctx.stats.at(1).skipped += 1;
        }
        batch.push(Candidate {
            path,
            key,
            closing: false,
            skipped,
        });
    }
    let supports = evaluate_batch(ctx, &batch, 1);
    // Admit in generation order (first path with a key wins, exactly as the
    // one-at-a-time loop admitted them).
    for (candidate, support) in batch.into_iter().zip(supports) {
        if candidate.skipped || support >= ctx.threshold {
            seen.entry(candidate.key).or_insert(candidate.path);
        }
    }
    let mut frontier: Vec<(CanonicalKey, Path)> = seen.into_iter().collect();
    frontier.sort_by(|a, b| a.0.cmp(&b.0));
    ctx.stats.at(1).elapsed += started.elapsed();
    frontier.into_iter().map(|(_, p)| p).collect()
}

/// One generated (not yet evaluated) candidate of a round.
struct Candidate {
    path: Path,
    key: CanonicalKey,
    /// Closing candidates go to `explanations`; open ones to the next
    /// frontier.
    closing: bool,
    /// Open candidates the estimator deemed non-selective: passed to the
    /// next round without evaluation (§3.2.1 optimization 3).
    skipped: bool,
}

/// Supports for a round's candidates, aligned with `batch` (skipped
/// candidates are not evaluated and get a placeholder 0 — admission checks
/// `skipped` first).
fn evaluate_batch(ctx: &mut Ctx<'_>, batch: &[Candidate], length: usize) -> Vec<usize> {
    let eval_idx: Vec<usize> = batch
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.skipped)
        .map(|(i, _)| i)
        .collect();
    let keyed: Vec<(&Path, &CanonicalKey)> = eval_idx
        .iter()
        .map(|&i| (&batch[i].path, &batch[i].key))
        .collect();
    let supports = ctx.supports_of(&keyed, length);
    let mut out = vec![0usize; batch.len()];
    for (&i, s) in eval_idx.iter().zip(supports) {
        out[i] = s;
    }
    out
}

/// Expands a frontier of open paths of length `len` by one edge. Closing
/// candidates (length `len+1`) that meet the threshold are recorded in
/// `explanations`; supported (or skipped) open continuations are returned
/// as the next frontier when `keep_open` allows it.
pub(crate) fn expand_frontier(
    ctx: &mut Ctx<'_>,
    edges: &EdgeSet,
    frontier: &[Path],
    len: usize,
    keep_open: bool,
    explanations: &mut HashMap<CanonicalKey, MinedTemplate>,
) -> Vec<Path> {
    let started = Instant::now();
    let next_len = len + 1;
    let mut next: HashMap<CanonicalKey, Path> = HashMap::new();
    let mut batch: Vec<Candidate> = Vec::new();
    for path in frontier {
        let tip_table = path.tip().table;
        for edge in edges.from_table(tip_table) {
            // (a) Closing candidate: the edge lands on the anchor's
            // opposite attribute.
            if edge.to == close_target(ctx.spec, path.direction()) {
                if let Ok(closed) = path.closed_by(*edge, ctx.spec) {
                    if closed.is_restricted(
                        ctx.spec.table,
                        ctx.config.max_length,
                        ctx.config.max_tables,
                        &ctx.config.exempt_tables,
                    ) {
                        ctx.stats.at(next_len).candidates += 1;
                        // Explanations are never skipped (§3.2.1).
                        let key = canonical_key(&closed, ctx.spec);
                        batch.push(Candidate {
                            path: closed,
                            key,
                            closing: true,
                            skipped: false,
                        });
                    }
                }
            }
            // (b) Continuation: the edge's target becomes a fresh tuple
            // variable. Fresh aliases of the log table are excluded unless
            // explicitly allowed (see `MiningConfig::allow_log_aliases`).
            if keep_open && (edge.to.table != ctx.spec.table || ctx.config.allow_log_aliases) {
                if let Ok(open) = path.extended(*edge) {
                    if !open.is_restricted(
                        ctx.spec.table,
                        ctx.config.max_length,
                        ctx.config.max_tables,
                        &ctx.config.exempt_tables,
                    ) {
                        continue;
                    }
                    ctx.stats.at(next_len).candidates += 1;
                    let key = canonical_key(&open, ctx.spec);
                    let skipped = ctx.should_skip(&open);
                    if skipped {
                        ctx.stats.at(next_len).skipped += 1;
                    }
                    batch.push(Candidate {
                        path: open,
                        key,
                        closing: false,
                        skipped,
                    });
                }
            }
        }
    }

    // Evaluate the whole round at once, then admit in generation order
    // (first path with a key wins, exactly as the one-at-a-time loop).
    let supports = evaluate_batch(ctx, &batch, next_len);
    for (candidate, support) in batch.into_iter().zip(supports) {
        if candidate.closing {
            if support >= ctx.threshold {
                explanations
                    .entry(candidate.key.clone())
                    .or_insert(MinedTemplate {
                        path: candidate.path,
                        support,
                        key: candidate.key,
                    });
            }
        } else if candidate.skipped || support >= ctx.threshold {
            next.entry(candidate.key).or_insert(candidate.path);
        }
    }
    let mut out: Vec<(CanonicalKey, Path)> = next.into_iter().collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    ctx.stats.at(next_len).elapsed += started.elapsed();
    out.into_iter().map(|(_, p)| p).collect()
}

/// Packages explanations + stats into a [`crate::mining::MiningResult`].
pub(crate) fn finish(
    ctx: Ctx<'_>,
    explanations: HashMap<CanonicalKey, MinedTemplate>,
) -> crate::mining::MiningResult {
    let mut templates: Vec<MinedTemplate> = explanations.into_values().collect();
    templates.sort_by(|a, b| (a.length(), &a.key).cmp(&(b.length(), &b.key)));
    crate::mining::MiningResult {
        templates,
        stats: ctx.stats,
        threshold: ctx.threshold,
        anchor_lids: ctx.anchor_lids,
    }
}
