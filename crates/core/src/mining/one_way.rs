//! Algorithm 1: one-way bottom-up template mining.

use crate::edge::EdgeSet;
use crate::log_spec::LogSpec;
use crate::mining::shared::{expand_frontier, finish, seed_frontier, Ctx};
use crate::mining::{MiningConfig, MiningResult};
use crate::path::Direction;
use eba_relational::Database;
use std::collections::HashMap;

/// Mines supported explanation templates by growing paths from the start
/// attribute (`Log.Patient`) one edge per round, exactly as the paper's
/// Algorithm 1:
///
/// 1. seed with the edges that begin at `Log.Patient`;
/// 2. each round, append every connected edge to every frontier path;
/// 3. keep candidates that are restricted simple paths with support ≥ S
///    (support is monotone, so unsupported paths prune their extensions);
/// 4. candidates landing on `Log.User` are explanation templates.
pub fn mine_one_way(db: &Database, spec: &LogSpec, config: &MiningConfig) -> MiningResult {
    let edges = EdgeSet::build(db);
    let mut ctx = Ctx::new(db, spec, config);
    let mut explanations = HashMap::new();
    let mut frontier = seed_frontier(&mut ctx, &edges, Direction::Forward);
    for len in 1..config.max_length {
        // Open paths of length M−1 can still close (making length-M
        // explanations) but their continuations would exceed M.
        let keep_open = len + 1 < config.max_length;
        frontier = expand_frontier(
            &mut ctx,
            &edges,
            &frontier,
            len,
            keep_open,
            &mut explanations,
        );
        if frontier.is_empty() && len + 1 < config.max_length {
            // The remaining explanations (if any) can only come from this
            // frontier; nothing left to extend.
            break;
        }
    }
    finish(ctx, explanations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_relational::{DataType, Value};

    /// Figure 3's database with FK metadata and data; template (A) has
    /// support 1/2, template (B) 2/2.
    fn figure3() -> (Database, LogSpec) {
        let mut db = Database::new();
        db.create_table(
            "Log",
            &[
                ("Lid", DataType::Int),
                ("Date", DataType::Date),
                ("User", DataType::Int),
                ("Patient", DataType::Int),
            ],
        )
        .unwrap();
        db.create_table(
            "Appointments",
            &[
                ("Patient", DataType::Int),
                ("Date", DataType::Date),
                ("Doctor", DataType::Int),
            ],
        )
        .unwrap();
        db.create_table(
            "Doctor_Info",
            &[("Doctor", DataType::Int), ("Department", DataType::Str)],
        )
        .unwrap();
        db.add_fk("Log", "Patient", "Appointments", "Patient")
            .unwrap();
        db.add_fk("Appointments", "Doctor", "Log", "User").unwrap();
        db.add_fk("Appointments", "Doctor", "Doctor_Info", "Doctor")
            .unwrap();
        db.add_fk("Doctor_Info", "Doctor", "Log", "User").unwrap();
        db.allow_self_join("Doctor_Info", "Department").unwrap();

        let ped = db.str_value("Pediatrics");
        let appt = db.table_id("Appointments").unwrap();
        let info = db.table_id("Doctor_Info").unwrap();
        let log = db.table_id("Log").unwrap();
        db.insert(appt, vec![Value::Int(10), Value::Date(1), Value::Int(1)])
            .unwrap();
        db.insert(appt, vec![Value::Int(11), Value::Date(2), Value::Int(2)])
            .unwrap();
        db.insert(info, vec![Value::Int(2), ped]).unwrap();
        db.insert(info, vec![Value::Int(1), ped]).unwrap();
        db.insert(
            log,
            vec![Value::Int(1), Value::Date(1), Value::Int(1), Value::Int(10)],
        )
        .unwrap();
        db.insert(
            log,
            vec![Value::Int(2), Value::Date(2), Value::Int(1), Value::Int(11)],
        )
        .unwrap();
        let spec = LogSpec::conventional(&db).unwrap();
        (db, spec)
    }

    #[test]
    fn finds_templates_a_and_b_at_50_percent_support() {
        let (db, spec) = figure3();
        let config = MiningConfig {
            support_frac: 0.5,
            max_length: 4,
            max_tables: 3,
            ..MiningConfig::default()
        };
        let result = mine_one_way(&db, &spec, &config);
        // Template (A) at length 2 (support 1 = 50%), template (B) at
        // length 4 (support 2), plus the Doctor_Info variant of (A) at
        // length 3 (appointment with a doctor, doctor in Doctor_Info,
        // doctor accessed) — all supported.
        let lengths: Vec<usize> = result.templates.iter().map(|t| t.length()).collect();
        assert!(lengths.contains(&2), "lengths: {lengths:?}");
        assert!(lengths.contains(&4), "lengths: {lengths:?}");
        let a = result.of_length(2).next().unwrap();
        assert_eq!(a.support, 1);
        // Support threshold: ceil(0.5 * 2) = 1.
        assert_eq!(result.threshold, 1);
        assert_eq!(result.anchor_lids, 2);
    }

    #[test]
    fn higher_threshold_prunes_template_a() {
        let (db, spec) = figure3();
        let config = MiningConfig {
            support_frac: 0.9,
            max_length: 4,
            max_tables: 3,
            ..MiningConfig::default()
        };
        let result = mine_one_way(&db, &spec, &config);
        // Only templates explaining both accesses survive (threshold 2).
        assert_eq!(result.threshold, 2);
        assert!(result.templates.iter().all(|t| t.support == 2));
        assert!(result.of_length(2).next().is_none());
        // Template (B) survives.
        assert!(result.of_length(4).next().is_some());
    }

    #[test]
    fn max_length_truncates_discovery() {
        let (db, spec) = figure3();
        let config = MiningConfig {
            support_frac: 0.5,
            max_length: 2,
            max_tables: 3,
            ..MiningConfig::default()
        };
        let result = mine_one_way(&db, &spec, &config);
        assert!(result.templates.iter().all(|t| t.length() <= 2));
        assert!(result.of_length(2).next().is_some());
    }

    #[test]
    fn max_tables_excludes_wide_templates() {
        let (db, spec) = figure3();
        let config = MiningConfig {
            support_frac: 0.5,
            max_length: 4,
            max_tables: 2,
            ..MiningConfig::default()
        };
        let result = mine_one_way(&db, &spec, &config);
        // Every mined template respects the limit (template (B), which
        // needs Log + Appointments + Doctor_Info = 3 tables, is excluded;
        // length-4 chains through a fresh Log alias use only 2 tables and
        // may remain).
        assert!(result
            .templates
            .iter()
            .all(|t| t.path.table_count(spec.table, &[]) <= 2));
        let info = db.table_id("Doctor_Info").unwrap();
        assert!(result
            .templates
            .iter()
            .all(|t| !t.path.tuple_vars().contains(&info)));
        // Template (A) needs only 2 tables and is found.
        assert!(result.of_length(2).next().is_some());
    }

    #[test]
    fn optimizations_do_not_change_output() {
        let (db, spec) = figure3();
        let base = MiningConfig {
            support_frac: 0.5,
            max_length: 4,
            max_tables: 3,
            ..MiningConfig::default()
        };
        let reference = mine_one_way(&db, &spec, &base);
        for (cache, dedup, skip) in [
            (false, true, true),
            (true, false, true),
            (true, true, false),
            (false, false, false),
        ] {
            let cfg = MiningConfig {
                opt_cache: cache,
                opt_dedup: dedup,
                opt_skip: skip,
                ..base.clone()
            };
            let result = mine_one_way(&db, &spec, &cfg);
            assert_eq!(
                result.key_set(),
                reference.key_set(),
                "cache={cache} dedup={dedup} skip={skip}"
            );
        }
    }

    #[test]
    fn stats_track_rounds() {
        let (db, spec) = figure3();
        let config = MiningConfig {
            support_frac: 0.5,
            ..MiningConfig::default()
        };
        let result = mine_one_way(&db, &spec, &config);
        assert!(!result.stats.per_length.is_empty());
        assert!(result.stats.support_queries() > 0);
        let cumulative = result.stats.cumulative();
        // Cumulative times are non-decreasing.
        for w in cumulative.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn empty_log_mines_nothing() {
        let (mut db, _) = figure3();
        // Recreate an empty-log database.
        let mut fresh = Database::new();
        fresh
            .create_table(
                "Log",
                &[
                    ("Lid", DataType::Int),
                    ("Date", DataType::Date),
                    ("User", DataType::Int),
                    ("Patient", DataType::Int),
                ],
            )
            .unwrap();
        fresh
            .create_table(
                "Appointments",
                &[("Patient", DataType::Int), ("Doctor", DataType::Int)],
            )
            .unwrap();
        fresh
            .add_fk("Log", "Patient", "Appointments", "Patient")
            .unwrap();
        fresh
            .add_fk("Appointments", "Doctor", "Log", "User")
            .unwrap();
        let spec = LogSpec::conventional(&fresh).unwrap();
        let result = mine_one_way(&fresh, &spec, &MiningConfig::default());
        assert!(result.templates.is_empty());
        let _ = &mut db;
    }
}
