//! Extension experiment: mining decorated group templates.
//!
//! §5.3.4 closes with the paper's future work: "we will consider how to
//! mine decorated explanation templates that restrict the groups that can
//! be used to better control precision" — motivated by their observation
//! that group information at one hierarchy depth suits appointment
//! explanations while another depth suits medication ones. This experiment
//! implements and evaluates that idea with
//! [`eba_core::mining::decorate::refine`]: every mined template that
//! traverses the `Groups` table is pinned to the deepest hierarchy level
//! that keeps its training support, then both template sets are compared on
//! the day-7 test split with the fake log.

use crate::fig_mining::mining_config_for;
use crate::figure::FigureResult;
use crate::scenario::Scenario;
use eba_audit::fake::{user_pool, FakeLog};
use eba_audit::{metrics, split};
use eba_core::mine_one_way;
use eba_core::mining::decorate::{refine_with, DecorationCandidate};
use eba_relational::{ChainQuery, Engine, EvalOptions, RowId, Value};
use std::collections::HashSet;

/// Compares plain mined group templates against their depth-refined
/// decorated variants. Expected shape: precision rises, recall gives up a
/// little — the knob the paper wanted.
pub fn ext_decorated(s: &Scenario) -> FigureResult {
    let train_spec = s.train_spec();
    let config = mining_config_for(&s.hospital);
    let mined = mine_one_way(&s.hospital.db, &train_spec, &config);
    let groups_t = s
        .hospital
        .db
        .table_id("Groups")
        .expect("scenario installs groups");

    // Partition the mined set: templates using Groups vs the rest.
    let (group_templates, other_templates): (Vec<_>, Vec<_>) = mined
        .templates
        .iter()
        .cloned()
        .partition(|t| t.path.tuple_vars().contains(&groups_t));

    let max_depth = s.groups.hierarchy.depth_count() - 1;
    let candidate =
        DecorationCandidate::group_depths(&s.hospital.db, max_depth).expect("Groups installed");
    // Refinement re-evaluates the mined set against the *training*
    // database — the scenario's warm engine already holds those step maps.
    let refined = refine_with(
        s.epoch().db(),
        &train_spec,
        &group_templates,
        &candidate,
        mined.threshold,
        &config,
        Some(s.engine()),
    );

    // Test environment: day-7 first accesses plus the fake log.
    let mut db = s.hospital.db.clone();
    let users = user_pool(&db);
    let patients: Vec<Value> = (0..s.hospital.world.n_patients())
        .map(|p| s.hospital.patient_value(p))
        .collect();
    let fake = FakeLog::inject(
        &mut db,
        s.hospital.t_log,
        &s.hospital.log_cols,
        &users,
        &patients,
        s.hospital.log_len(),
        s.hospital.config.days,
        0xDEC0,
    );
    let spec = s
        .spec
        .with_filters(split::days_first(&s.hospital.log_cols, 7, 7));
    let anchors = metrics::anchor_rows(&db, &spec);

    // One warm engine over the combined test database serves all four
    // template-set evaluations below.
    let test_engine = Engine::new(&db);
    let eval_paths = |paths: Vec<&eba_core::Path>| -> (f64, f64) {
        let queries: Vec<ChainQuery> = paths.iter().map(|p| p.to_chain_query(&spec)).collect();
        let rows: HashSet<RowId> = test_engine
            .explained_union(&db, &queries, EvalOptions::default())
            .expect("valid paths");
        let c = metrics::confusion_from_sets(&anchors, &rows, |r| fake.is_fake(r), None);
        (c.precision(), c.recall())
    };

    let mut fig = FigureResult::new(
        "Extension (decorated mining)",
        "Depth-refined group templates vs plain mined templates (day-7 first accesses)",
        &["Precision", "Recall"],
    );
    let (p_plain, r_plain) = eval_paths(group_templates.iter().map(|t| &t.path).collect());
    fig.push_row("Group templates, any depth", &[p_plain, r_plain]);
    let (p_ref, r_ref) = eval_paths(refined.iter().map(|d| &d.path).collect());
    fig.push_row("Group templates, depth-refined", &[p_ref, r_ref]);
    let (p_all, r_all) = eval_paths(
        other_templates
            .iter()
            .map(|t| &t.path)
            .chain(group_templates.iter().map(|t| &t.path))
            .collect(),
    );
    fig.push_row("Full mined set (baseline)", &[p_all, r_all]);
    let (p_all_ref, r_all_ref) = eval_paths(
        other_templates
            .iter()
            .map(|t| &t.path)
            .chain(refined.iter().map(|d| &d.path))
            .collect(),
    );
    fig.push_row("Full set with refined groups", &[p_all_ref, r_all_ref]);
    fig.note(format!(
        "{} of {} group templates kept a depth decoration; chosen depths: {:?}",
        refined.len(),
        group_templates.len(),
        {
            let mut depths: Vec<i64> = refined
                .iter()
                .map(|d| match d.pinned {
                    Value::Int(i) => i,
                    _ => -1,
                })
                .collect();
            depths.sort_unstable();
            depths.dedup();
            depths
        }
    ));
    fig.note(
        "implements the paper's §5.3.4 future work: restricting group depth to control precision"
            .to_string(),
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_synth::SynthConfig;

    #[test]
    fn refinement_does_not_hurt_precision() {
        let s = Scenario::build(SynthConfig::tiny());
        let fig = ext_decorated(&s);
        let plain_p = fig.value("Group templates, any depth", 0).unwrap();
        let refined_p = fig.value("Group templates, depth-refined", 0).unwrap();
        assert!(
            refined_p + 1e-9 >= plain_p,
            "refined precision {refined_p} < plain {plain_p}"
        );
        // Refinement can only shrink the explained set.
        let plain_r = fig.value("Group templates, any depth", 1).unwrap();
        let refined_r = fig.value("Group templates, depth-refined", 1).unwrap();
        assert!(refined_r <= plain_r + 1e-9);
    }
}
