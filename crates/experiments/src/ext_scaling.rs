//! Extension experiment: mining scalability.
//!
//! The paper measures mining cost against template length (Figure 13) on a
//! fixed data set and is explicit that it is "not intended to be a full
//! performance study". This extension adds the missing axis: how one-way
//! mining cost grows with the data itself (patients, and with them
//! accesses), holding the paper's parameters (s = 1%, T = 3, M = 4) fixed.

use crate::fig_mining::mining_config_for;
use crate::figure::FigureResult;
use crate::scenario::Scenario;
use eba_core::mine_one_way;
use eba_synth::SynthConfig;

/// Runs one-way mining at several data scales, reporting accesses, mined
/// template counts, support queries and wall-clock seconds.
pub fn ext_scaling(patient_counts: &[usize]) -> FigureResult {
    let mut fig = FigureResult::new(
        "Extension (scaling)",
        "One-way mining cost vs data scale (s=1%, T=3, M=4)",
        &["Accesses", "Templates", "Support queries", "Seconds"],
    );
    for &n in patient_counts {
        let config = SynthConfig {
            n_patients: n,
            // Staff scales with patients to keep density realistic.
            n_teams: (n / 250).clamp(3, 24),
            n_float_accesses: n / 4,
            ..SynthConfig::default_scale()
        };
        let scenario = Scenario::build(config);
        let spec = scenario.train_spec();
        let mining = mining_config_for(&scenario.hospital);
        let started = std::time::Instant::now();
        let result = mine_one_way(&scenario.hospital.db, &spec, &mining);
        let secs = started.elapsed().as_secs_f64();
        fig.push_row(
            format!("{n} patients"),
            &[
                scenario.hospital.log_len() as f64,
                result.templates.len() as f64,
                result.stats.support_queries() as f64,
                secs,
            ],
        );
    }
    fig.note("support evaluation scans scale with the log; the candidate space scales with the schema, not the data".to_string());
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_rows_grow_with_patients() {
        let fig = ext_scaling(&[60, 120]);
        assert_eq!(fig.rows.len(), 2);
        let a0 = fig.rows[0].values[0].unwrap();
        let a1 = fig.rows[1].values[0].unwrap();
        assert!(a1 > a0, "more patients must mean more accesses");
        // Both scales mine a nonzero template set.
        assert!(fig.rows.iter().all(|r| r.values[1].unwrap() > 0.0));
    }
}
