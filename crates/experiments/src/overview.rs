//! §5.2-style data-set overview.

use crate::figure::FigureResult;
use crate::scenario::Scenario;
use std::collections::HashSet;

/// Table and log statistics, the analogue of the paper's §5.2 numbers
/// (4.5M accesses, 124K patients, 12K users, 500K distinct pairs, density
/// 3·10⁻⁴, 51K appointments, 3K visits, 76K documents, 45K labs, 242K
/// medications, 17K radiology, 291 department codes).
pub fn data_overview(s: &Scenario) -> FigureResult {
    let h = &s.hospital;
    let db = &h.db;
    let log = db.table(h.t_log);
    let mut pairs: HashSet<(eba_relational::Value, eba_relational::Value)> = HashSet::new();
    for (_, row) in log.iter() {
        pairs.insert((row[h.log_cols.user], row[h.log_cols.patient]));
    }
    let users = h.world.n_users() as f64;
    let patients = h.world.n_patients() as f64;
    let density = pairs.len() as f64 / (users * patients);

    let mut fig = FigureResult::new("Overview", "Data-set statistics (§5.2)", &["Count"]);
    fig.push_row("Accesses", &[log.len() as f64]);
    fig.push_row("Distinct patients", &[patients]);
    fig.push_row("Distinct users", &[users]);
    fig.push_row("Distinct user-patient pairs", &[pairs.len() as f64]);
    fig.push_row("Appointments", &[db.table(h.t_appointments).len() as f64]);
    fig.push_row("Visits", &[db.table(h.t_visits).len() as f64]);
    fig.push_row("Documents", &[db.table(h.t_documents).len() as f64]);
    fig.push_row("Labs", &[db.table(h.t_labs).len() as f64]);
    fig.push_row("Medications", &[db.table(h.t_medications).len() as f64]);
    fig.push_row("Radiology", &[db.table(h.t_radiology).len() as f64]);
    fig.push_row("Department codes", &[h.world.departments().len() as f64]);
    fig.note(format!(
        "user-patient density = {density:.2e} (paper: 3.0e-4)"
    ));
    fig.note("paper scale: 4.5M accesses, 124K patients, 12K users, 51K appts, 3K visits, 76K docs, 45K labs, 242K meds, 17K radiology, 291 dept codes".to_string());
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_synth::SynthConfig;

    #[test]
    fn overview_reports_consistent_counts() {
        let s = Scenario::build(SynthConfig::tiny());
        let fig = data_overview(&s);
        let accesses = fig.value("Accesses", 0).unwrap();
        assert_eq!(accesses as usize, s.hospital.log_len());
        // Visits are rarer than appointments, as in the paper.
        assert!(fig.value("Visits", 0).unwrap() < fig.value("Appointments", 0).unwrap());
        // Pairs cannot exceed accesses.
        assert!(fig.value("Distinct user-patient pairs", 0).unwrap() <= accesses);
    }
}
