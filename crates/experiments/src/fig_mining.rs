//! Figure 13 (mining performance) and Table 1 (template-set stability).

use crate::figure::{FigureResult, FigureRow};
use crate::scenario::Scenario;
use eba_audit::split;
use eba_core::canonical::canonical_key;
use eba_core::{mine_bridge, mine_one_way, mine_two_way, LogSpec, MiningConfig, MiningResult};
use std::collections::{BTreeMap, BTreeSet};

/// The paper's mining parameters: s = 1%, T = 3 tables, lengths to M = 4
/// (our default schema has no mapping table, so the longest supported
/// templates are the length-4 group/department ones; the paper's length-5
/// templates only arise through its audit-id mapping table).
pub fn paper_mining_config() -> MiningConfig {
    MiningConfig {
        support_frac: 0.01,
        max_length: 4,
        max_tables: 3,
        ..MiningConfig::default()
    }
}

/// [`paper_mining_config`] adapted to the hospital: when the mapping-table
/// artifact is present it is exempted from the table limit and the length
/// bound is raised to 5, exactly as the paper configured its runs.
pub fn mining_config_for(hospital: &eba_synth::Hospital) -> MiningConfig {
    let mut config = paper_mining_config();
    if let Some(mapping) = hospital.t_mapping {
        config.exempt_tables.push(mapping);
        config.max_length = 5;
    }
    config
}

/// Figure 13: cumulative mining run time by explanation length for
/// One-Way, Two-Way, and Bridge-2/3/4, on the first accesses of days 1–6
/// with group information installed. Paper shape: Bridge-2 is fastest
/// (start/end constraints pushed down), one-way beats two-way.
pub fn fig13(s: &Scenario) -> FigureResult {
    let spec = s.train_spec();
    let config = mining_config_for(&s.hospital);
    let algorithms: Vec<(&str, MiningResult)> = vec![
        ("One-Way", mine_one_way(&s.hospital.db, &spec, &config)),
        ("Two-Way", mine_two_way(&s.hospital.db, &spec, &config)),
        (
            "Bridge-2",
            mine_bridge(&s.hospital.db, &spec, &config, 2).expect("M=4 ≤ 2·2+1"),
        ),
        (
            "Bridge-3",
            mine_bridge(&s.hospital.db, &spec, &config, 3).expect("M=4 ≤ 2·3+1"),
        ),
        (
            "Bridge-4",
            mine_bridge(&s.hospital.db, &spec, &config, 4).expect("M=4 ≤ 2·4+1"),
        ),
    ];

    let col_names: Vec<&str> = algorithms.iter().map(|(n, _)| *n).collect();
    let mut fig = FigureResult::new(
        "Figure 13",
        "Cumulative mining run time by explanation length (seconds)",
        &col_names,
    );
    for length in 1..=config.max_length {
        let values: Vec<Option<f64>> = algorithms
            .iter()
            .map(|(_, r)| {
                r.stats
                    .cumulative()
                    .into_iter()
                    .rfind(|(l, _)| *l <= length)
                    .map(|(_, d)| d.as_secs_f64())
            })
            .collect();
        fig.rows
            .push(FigureRow::sparse(format!("Length {length}"), values));
    }

    // §5.3.3: "Each algorithm produced the same set of explanation
    // templates."
    let reference = algorithms[0].1.key_set();
    let identical = algorithms.iter().all(|(_, r)| r.key_set() == reference);
    fig.note(format!(
        "all algorithms produced identical template sets: {identical} ({} templates, threshold {} of {} first accesses)",
        algorithms[0].1.templates.len(),
        algorithms[0].1.threshold,
        algorithms[0].1.anchor_lids,
    ));
    fig.note("paper shape: Bridge-2 fastest, one-way faster than two-way".to_string());
    fig
}

/// Mines one-way over a day range (first accesses), returning the result
/// and the *period-neutral* canonical keys (anchor filters stripped) used
/// for cross-period comparison.
fn mine_period(
    s: &Scenario,
    lo: u32,
    hi: u32,
    config: &MiningConfig,
) -> (MiningResult, BTreeMap<usize, BTreeSet<String>>) {
    let spec = s
        .spec
        .with_filters(split::days_first(&s.hospital.log_cols, lo, hi));
    let result = mine_one_way(&s.hospital.db, &spec, config);
    let neutral: LogSpec = s.spec.clone();
    let mut by_len: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    for t in &result.templates {
        by_len
            .entry(t.length())
            .or_default()
            .insert(canonical_key(&t.path, &neutral).as_str().to_string());
    }
    (result, by_len)
}

/// Table 1: number of explanation templates mined per time period (days
/// 1–6, day 1, day 3, day 7) and the common core shared by all periods,
/// broken down by length. Paper: the counts are stable and a common set
/// exists in every period (11/241/25 at lengths 2/3/4 for days 1–6).
pub fn table1(s: &Scenario) -> FigureResult {
    let config = mining_config_for(&s.hospital);
    let periods: Vec<(&str, u32, u32)> = vec![
        ("Days 1-6", 1, 6),
        ("Day 1", 1, 1),
        ("Day 3", 3, 3),
        ("Day 7", 7, 7),
    ];
    let mined: Vec<(&str, BTreeMap<usize, BTreeSet<String>>)> = periods
        .iter()
        .map(|(name, lo, hi)| {
            let (_, keys) = mine_period(s, *lo, *hi, &config);
            (*name, keys)
        })
        .collect();

    let mut columns: Vec<String> = mined.iter().map(|(n, _)| (*n).to_string()).collect();
    columns.push("Common".to_string());
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut fig = FigureResult::new(
        "Table 1",
        "Number of explanation templates mined per time period",
        &col_refs,
    );

    let lengths: BTreeSet<usize> = mined.iter().flat_map(|(_, m)| m.keys().copied()).collect();
    for length in lengths {
        let mut values: Vec<Option<f64>> = Vec::with_capacity(mined.len() + 1);
        let mut common: Option<BTreeSet<String>> = None;
        for (_, keys) in &mined {
            let set = keys.get(&length).cloned().unwrap_or_default();
            values.push(Some(set.len() as f64));
            common = Some(match common {
                None => set,
                Some(c) => c.intersection(&set).cloned().collect(),
            });
        }
        values.push(Some(common.map_or(0, |c| c.len()) as f64));
        fig.rows
            .push(FigureRow::sparse(format!("Length {length}"), values));
    }
    fig.note("paper (days 1-6): 11 / 241 / 25 templates at lengths 2 / 3 / 4; a stable common core exists across periods".to_string());
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_synth::SynthConfig;

    fn scenario() -> Scenario {
        Scenario::build(SynthConfig::tiny())
    }

    #[test]
    fn fig13_reports_identical_sets_and_monotone_times() {
        let s = scenario();
        let fig = fig13(&s);
        assert!(
            fig.notes[0].contains("identical template sets: true"),
            "{}",
            fig.notes[0]
        );
        // Cumulative times are non-decreasing down the rows, per column.
        for col in 0..fig.columns.len() {
            let mut prev = 0.0;
            for row in &fig.rows {
                if let Some(v) = row.values[col] {
                    assert!(v + 1e-12 >= prev, "cumulative time decreased");
                    prev = v;
                }
            }
        }
    }

    #[test]
    fn table1_has_common_core() {
        let s = scenario();
        let fig = table1(&s);
        assert!(!fig.rows.is_empty());
        let common_col = fig.columns.len() - 1;
        for row in &fig.rows {
            let common = row.values[common_col].unwrap();
            for v in &row.values[..common_col] {
                assert!(common <= v.unwrap() + 1e-9, "common exceeds a period count");
            }
        }
        // Length-2 templates (appointment-with-doctor etc.) recur in every
        // period.
        let len2 = fig
            .rows
            .iter()
            .find(|r| r.label == "Length 2")
            .expect("length-2 templates mined");
        assert!(len2.values[common_col].unwrap() >= 1.0);
    }
}
