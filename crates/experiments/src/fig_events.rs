//! Figures 6 and 8: how often accessed patients have events in the
//! database ("recall of events").

use crate::figure::FigureResult;
use crate::scenario::Scenario;
use eba_audit::handcrafted::event_predicates;
use eba_audit::{metrics, split};
use eba_core::LogSpec;
use eba_relational::{ChainQuery, Database, Engine, EvalOptions, RowId};
use std::collections::HashSet;

/// Union of rows whose patient has any data-set-A or B event, evaluated
/// as one batch on `engine` (a warm engine over `db`).
pub fn rows_with_any_event_on(db: &Database, spec: &LogSpec, engine: &Engine) -> HashSet<RowId> {
    let preds = event_predicates(db, spec).expect("schema is CareWeb-shaped");
    let queries: Vec<ChainQuery> = preds.iter().map(|(_, p)| p.to_chain_query(spec)).collect();
    engine
        .explained_union(db, &queries, EvalOptions::default())
        .expect("valid predicate")
}

/// Union of rows whose patient has any data-set-A or B event.
pub fn rows_with_any_event(s: &Scenario, spec: &LogSpec) -> HashSet<RowId> {
    rows_with_any_event_on(s.epoch().db(), spec, s.engine())
}

fn event_figure(
    s: &Scenario,
    spec: &LogSpec,
    id: &str,
    title: &str,
    include_repeat: bool,
    paper: &[(&str, f64)],
) -> FigureResult {
    // The epoch's database: provably the state the scenario engine was
    // built over (identical content to `s.hospital.db`).
    let db = s.epoch().db();
    let denominator = metrics::anchor_rows(db, spec).len().max(1) as f64;
    let mut fig = FigureResult::new(id, title, &["Recall", "Paper"]);
    let preds = event_predicates(db, spec).expect("schema is CareWeb-shaped");
    let mut all: HashSet<RowId> = HashSet::new();
    let paper_of = |label: &str| paper.iter().find(|(l, _)| *l == label).map(|(_, v)| *v);

    // One engine batch answers every event-predicate bar of the figure.
    let queries: Vec<ChainQuery> = preds.iter().map(|(_, p)| p.to_chain_query(spec)).collect();
    let per_pred = s
        .engine()
        .explained_rows_many(db, &queries, EvalOptions::default());
    for ((label, _), rows) in preds.iter().zip(per_pred) {
        let rows: HashSet<RowId> = rows.expect("valid predicate").into_iter().collect();
        let recall = rows.len() as f64 / denominator;
        fig.rows.push(crate::figure::FigureRow::sparse(
            (*label).to_string(),
            vec![Some(recall), paper_of(label)],
        ));
        all.extend(rows);
    }
    if include_repeat {
        let repeat: HashSet<RowId> = s
            .handcrafted
            .repeat_access
            .explained_rows_with(db, spec, s.engine())
            .expect("valid template")
            .into_iter()
            .collect();
        fig.rows.push(crate::figure::FigureRow::sparse(
            "Repeat Access".to_string(),
            vec![
                Some(repeat.len() as f64 / denominator),
                paper_of("Repeat Access"),
            ],
        ));
        all.extend(repeat);
    }
    fig.rows.push(crate::figure::FigureRow::sparse(
        "All".to_string(),
        vec![Some(all.len() as f64 / denominator), paper_of("All")],
    ));
    fig
}

/// Figure 6: frequency of events in the database for **all** accesses.
/// Paper: appointments and documents are common, visits rare, repeats a
/// majority, and ~97% of accesses reference a patient with *some* event.
pub fn fig06(s: &Scenario) -> FigureResult {
    let mut fig = event_figure(
        s,
        &s.spec,
        "Figure 6",
        "Frequency of events in the database (all accesses)",
        true,
        &[
            ("Appt", 0.60),
            ("Visit", 0.07),
            ("Document", 0.55),
            ("Repeat Access", 0.62),
            ("All", 0.97),
        ],
    );
    fig.note("paper reference values are approximate bar heights; the residue reflects the truncated data set".to_string());
    fig
}

/// Figure 8: the same measurement restricted to **first** accesses.
/// Paper: ~75% of first accesses reference a patient with some event.
pub fn fig08(s: &Scenario) -> FigureResult {
    let spec = s.spec.with_filters(split::first_only(&s.hospital.log_cols));
    let mut fig = event_figure(
        s,
        &spec,
        "Figure 8",
        "Frequency of events in the database (first accesses)",
        false,
        &[
            ("Appt", 0.55),
            ("Visit", 0.06),
            ("Document", 0.50),
            ("All", 0.75),
        ],
    );
    fig.note("the ~25% residue is attributed to the incomplete (truncated) data set".to_string());
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_synth::SynthConfig;

    fn scenario() -> Scenario {
        Scenario::build(SynthConfig::tiny())
    }

    #[test]
    fn fig06_shape_matches_paper() {
        let s = scenario();
        let fig = fig06(&s);
        let all = fig.value("All", 0).unwrap();
        let appt = fig.value("Appt", 0).unwrap();
        let visit = fig.value("Visit", 0).unwrap();
        // All ≥ every individual bar; visits rare; most accesses covered.
        assert!(all >= appt && all >= visit);
        assert!(visit < appt, "visits must be rarer than appointments");
        assert!(all > 0.8, "All = {all}, expected the vast majority covered");
    }

    #[test]
    fn fig08_first_access_coverage_is_lower_than_fig06() {
        let s = scenario();
        let all6 = fig06(&s).value("All", 0).unwrap();
        let all8 = fig08(&s).value("All", 0).unwrap();
        assert!(
            all8 <= all6 + 1e-9,
            "first-access coverage ({all8}) cannot exceed all-access coverage ({all6})"
        );
        // Truncation leaves a visible residue among first accesses.
        assert!(all8 < 0.95, "All (first) = {all8}");
        assert!(all8 > 0.4, "All (first) = {all8}");
    }

    #[test]
    fn repeat_bar_only_in_fig06() {
        let s = scenario();
        assert!(fig06(&s).value("Repeat Access", 0).is_some());
        assert!(fig08(&s).value("Repeat Access", 0).is_none());
    }
}
