//! Typed experiment results, renderable as text tables and CSV.

use std::fmt;

/// One row: a label and one value per column.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureRow {
    /// Row label (e.g. `"Appt w/Dr."`).
    pub label: String,
    /// Values, parallel to [`FigureResult::columns`]. `None` renders as
    /// `-` (e.g. the paper did not report that cell).
    pub values: Vec<Option<f64>>,
}

impl FigureRow {
    /// Builds a row from present values.
    pub fn new(label: impl Into<String>, values: &[f64]) -> Self {
        FigureRow {
            label: label.into(),
            values: values.iter().copied().map(Some).collect(),
        }
    }

    /// Builds a row allowing missing cells.
    pub fn sparse(label: impl Into<String>, values: Vec<Option<f64>>) -> Self {
        FigureRow {
            label: label.into(),
            values,
        }
    }
}

/// A reproduced table or figure.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureResult {
    /// Paper artifact id, e.g. `"Figure 6"`.
    pub id: String,
    /// Descriptive title.
    pub title: String,
    /// Value-column names.
    pub columns: Vec<String>,
    /// Rows in display order.
    pub rows: Vec<FigureRow>,
    /// Free-form notes: paper reference values, caveats, parameters.
    pub notes: Vec<String>,
}

impl FigureResult {
    /// Creates an empty result to be filled.
    pub fn new(id: impl Into<String>, title: impl Into<String>, columns: &[&str]) -> FigureResult {
        FigureResult {
            id: id.into(),
            title: title.into(),
            columns: columns.iter().map(|c| (*c).to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a dense row.
    pub fn push_row(&mut self, label: impl Into<String>, values: &[f64]) {
        debug_assert_eq!(values.len(), self.columns.len());
        self.rows.push(FigureRow::new(label, values));
    }

    /// Appends a note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Looks up a row's value by label and column index.
    pub fn value(&self, label: &str, col: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.label == label)
            .and_then(|r| r.values.get(col).copied().flatten())
    }

    /// CSV rendering (header + rows).
    pub fn to_csv(&self) -> String {
        let mut s = String::new();
        s.push_str("label");
        for c in &self.columns {
            s.push(',');
            s.push_str(c);
        }
        s.push('\n');
        for r in &self.rows {
            s.push_str(&escape_csv(&r.label));
            for v in &r.values {
                s.push(',');
                if let Some(v) = v {
                    s.push_str(&format_value(*v));
                }
            }
            s.push('\n');
        }
        s
    }
}

fn escape_csv(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn format_value(v: f64) -> String {
    if (v.fract()).abs() < 1e-9 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

impl fmt::Display for FigureResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} — {} ===", self.id, self.title)?;
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain(std::iter::once(5))
            .max()
            .unwrap_or(5)
            .max(5);
        let col_w: Vec<usize> = self.columns.iter().map(|c| c.len().max(10)).collect();
        write!(f, "{:label_w$}", "")?;
        for (c, w) in self.columns.iter().zip(&col_w) {
            write!(f, "  {c:>w$}")?;
        }
        writeln!(f)?;
        for r in &self.rows {
            write!(f, "{:label_w$}", r.label)?;
            for (v, w) in r.values.iter().zip(&col_w) {
                match v {
                    Some(v) => write!(f, "  {:>w$}", format_value(*v))?,
                    None => write!(f, "  {:>w$}", "-")?,
                }
            }
            writeln!(f)?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> FigureResult {
        let mut fig = FigureResult::new("Figure 0", "demo", &["Measured", "Paper"]);
        fig.push_row("Appt", &[0.5123, 0.55]);
        fig.rows
            .push(FigureRow::sparse("All", vec![Some(0.97), None]));
        fig.note("values are fractions of the log");
        fig
    }

    #[test]
    fn display_renders_all_rows_and_notes() {
        let s = fig().to_string();
        assert!(s.contains("Figure 0"));
        assert!(s.contains("Appt"));
        assert!(s.contains("0.5123"));
        assert!(s.contains('-'), "missing cells render as dashes");
        assert!(s.contains("note: values"));
    }

    #[test]
    fn csv_round_trip_shape() {
        let csv = fig().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "label,Measured,Paper");
        assert!(lines[2].starts_with("All,0.9700,"), "{}", lines[2]);
    }

    #[test]
    fn value_lookup() {
        let f = fig();
        assert_eq!(f.value("Appt", 1), Some(0.55));
        assert_eq!(f.value("All", 1), None);
        assert_eq!(f.value("Nope", 0), None);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut f = FigureResult::new("T", "t", &["v"]);
        f.push_row("a,b", &[1.0]);
        assert!(f.to_csv().contains("\"a,b\""));
    }

    #[test]
    fn integers_render_without_decimals() {
        assert_eq!(format_value(241.0), "241");
        assert_eq!(format_value(0.34), "0.3400");
    }
}
