//! Figure 14: predictive power of the *mined* templates.

use crate::fig_events::{rows_with_any_event, rows_with_any_event_on};
use crate::fig_mining::mining_config_for;
use crate::figure::FigureResult;
use crate::scenario::Scenario;
use eba_audit::fake::{user_pool, FakeLog};
use eba_audit::{metrics, split};
use eba_core::mine_one_way;
use eba_core::MinedTemplate;
use eba_relational::{ChainQuery, Engine, EvalOptions, RowId, Value};
use std::collections::HashSet;

/// Figure 14: templates are mined from the first accesses of days 1–6 (with
/// group information), then tested on day-7 first accesses combined with a
/// fake log. Paper shape: length-2 templates have the best precision and
/// ~34% recall (42% normalized); length 3 raises recall to ~51% (65%);
/// length 4 (groups) to ~73% (89%) at lower precision; "All" is close to
/// length 4 because longer templates subsume shorter ones.
pub fn fig14(s: &Scenario) -> FigureResult {
    let mined = mine_one_way(
        &s.hospital.db,
        &s.train_spec(),
        &mining_config_for(&s.hospital),
    );

    // Build the combined (real + fake) test database.
    let mut db = s.hospital.db.clone();
    let users = user_pool(&db);
    let patients: Vec<Value> = (0..s.hospital.world.n_patients())
        .map(|p| s.hospital.patient_value(p))
        .collect();
    let fake = FakeLog::inject(
        &mut db,
        s.hospital.t_log,
        &s.hospital.log_cols,
        &users,
        &patients,
        s.hospital.log_len(),
        s.hospital.config.days,
        0xF1614,
    );
    let spec = s
        .spec
        .with_filters(split::days_first(&s.hospital.log_cols, 7, 7));
    let anchors = metrics::anchor_rows(&db, &spec);
    // One warm engine over the combined database serves every template
    // group of the figure (and the event-coverage denominator).
    let engine = Engine::new(&db);
    let with_events = rows_with_any_event_on(&db, &spec, &engine);

    let mut fig = FigureResult::new(
        "Figure 14",
        "Mined explanations' predictive power for first accesses (trained days 1-6, tested day 7)",
        &["Precision", "Recall", "Recall Normalized"],
    );
    let lengths: Vec<usize> = {
        let mut ls: Vec<usize> = mined.templates.iter().map(|t| t.length()).collect();
        ls.sort_unstable();
        ls.dedup();
        ls
    };
    let mut eval_group = |label: String, rows: HashSet<RowId>| {
        let c = metrics::confusion_from_sets(
            &anchors,
            &rows,
            |rid| fake.is_fake(rid),
            Some(&with_events),
        );
        fig.push_row(label, &[c.precision(), c.recall(), c.normalized_recall()]);
    };

    let explained_union = |templates: Vec<&MinedTemplate>| -> HashSet<RowId> {
        let queries: Vec<ChainQuery> = templates
            .iter()
            .map(|t| t.path.to_chain_query(&spec))
            .collect();
        engine
            .explained_union(&db, &queries, EvalOptions::default())
            .expect("mined templates lower to valid queries")
    };
    for length in &lengths {
        eval_group(
            format!("Length {length}"),
            explained_union(mined.of_length(*length).collect()),
        );
    }
    eval_group(
        "All".to_string(),
        explained_union(mined.templates.iter().collect()),
    );

    // Context: how much of the test split is even explainable.
    let coverage = rows_with_any_event(s, &spec);
    let real_anchor = anchors.iter().filter(|&&r| !fake.is_fake(r)).count();
    let covered = anchors
        .iter()
        .filter(|&&r| !fake.is_fake(r) && coverage.contains(&r))
        .count();
    fig.note(format!(
        "{} templates mined on days 1-6; {covered}/{real_anchor} day-7 first accesses reference a patient with events",
        mined.templates.len()
    ));
    fig.note("paper: precision falls and recall rises with length (34%→51%→73%); All ≈ length 4 because longer templates subsume shorter ones".to_string());
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_synth::SynthConfig;

    #[test]
    fn fig14_recall_rises_precision_falls_with_length() {
        let s = Scenario::build(SynthConfig::tiny());
        let fig = fig14(&s);
        // The shape assertions of the paper: longer templates explain more
        // (weakly) and "All" matches the most permissive group.
        let lengths: Vec<&crate::figure::FigureRow> = fig
            .rows
            .iter()
            .filter(|r| r.label.starts_with("Length"))
            .collect();
        assert!(lengths.len() >= 2, "expected several template lengths");
        let first_recall = lengths.first().unwrap().values[1].unwrap();
        let last_recall = lengths.last().unwrap().values[1].unwrap();
        assert!(
            last_recall >= first_recall,
            "recall should rise with length ({first_recall} → {last_recall})"
        );
        let first_precision = lengths.first().unwrap().values[0].unwrap();
        let last_precision = lengths.last().unwrap().values[0].unwrap();
        assert!(
            first_precision >= last_precision - 0.05,
            "short templates should be at least as precise ({first_precision} vs {last_precision})"
        );
        let all_recall = fig.value("All", 1).unwrap();
        assert!(all_recall + 1e-9 >= last_recall);
    }

    #[test]
    fn fig14_normalized_recall_dominates_recall() {
        let s = Scenario::build(SynthConfig::tiny());
        let fig = fig14(&s);
        for row in &fig.rows {
            let (Some(recall), Some(norm)) = (row.values[1], row.values[2]) else {
                continue;
            };
            assert!(
                norm + 1e-9 >= recall,
                "normalized recall must be ≥ recall ({})",
                row.label
            );
        }
    }
}
