//! # eba-experiments
//!
//! Reproduction of every table and figure in the evaluation (§5) of
//! *Explanation-Based Auditing* (Fabbri & LeFevre, VLDB 2011), against the
//! synthetic CareWeb-scale hospital of [`eba_synth`].
//!
//! Each figure is a function returning a typed [`FigureResult`] so tests
//! can assert the *shape* of the result (who wins, orderings, crossover
//! directions) — absolute values differ from the paper because the
//! substrate is a synthetic data set, not the UMHS testbed. The
//! `reproduce` binary in `eba-bench` renders these as text tables and
//! CSV.
//!
//! | Experiment | Paper content | Function |
//! |---|---|---|
//! | §5.2 | data-set overview | [`overview::data_overview`] |
//! | Fig. 6 | event frequency, all accesses | [`fig_events::fig06`] |
//! | Fig. 7 | hand-crafted recall, all accesses | [`fig_handcrafted::fig07`] |
//! | Fig. 8 | event frequency, first accesses | [`fig_events::fig08`] |
//! | Fig. 9 | hand-crafted recall, first accesses | [`fig_handcrafted::fig09`] |
//! | Fig. 10–11 | collaborative-group composition | [`fig_groups::fig10_11`] |
//! | Fig. 12 | group predictive power vs depth | [`fig_groups::fig12`] |
//! | Fig. 13 | mining performance | [`fig_mining::fig13`] |
//! | Fig. 14 | mined-template predictive power | [`fig_predictive::fig14`] |
//! | Table 1 | template-set stability over time | [`fig_mining::table1`] |

pub mod ext_decorated;
pub mod ext_scaling;
pub mod fig_events;
pub mod fig_groups;
pub mod fig_handcrafted;
pub mod fig_mining;
pub mod fig_predictive;
pub mod figure;
pub mod overview;
pub mod scenario;

pub use figure::{FigureResult, FigureRow};
pub use scenario::Scenario;

/// Runs every experiment on one scenario, in paper order.
pub fn run_all(scenario: &Scenario) -> Vec<FigureResult> {
    let mut out = vec![
        overview::data_overview(scenario),
        fig_events::fig06(scenario),
        fig_handcrafted::fig07(scenario),
        fig_events::fig08(scenario),
        fig_handcrafted::fig09(scenario),
    ];
    out.extend(fig_groups::fig10_11(scenario));
    out.push(fig_groups::fig12(scenario));
    out.push(fig_mining::fig13(scenario));
    out.push(fig_predictive::fig14(scenario));
    out.push(fig_mining::table1(scenario));
    out.push(ext_decorated::ext_decorated(scenario));
    out
}
