//! The shared experimental setup: one synthetic hospital with
//! collaborative groups installed, mirroring §5's environment.

use eba_audit::groups::{collaborative_groups, install_groups, GroupsModel};
use eba_audit::handcrafted::HandcraftedTemplates;
use eba_audit::split;
use eba_cluster::HierarchyConfig;
use eba_core::LogSpec;
use eba_relational::{Engine, Epoch, SharedEngine};
use eba_synth::{Hospital, SynthConfig};
use std::sync::Arc;

/// A hospital ready for experiments: groups trained on days 1–6 and
/// installed, hand-crafted templates built, and one [`SharedEngine`]
/// session whose pinned [`Epoch`] serves every figure that reads the
/// unmodified database — the same writer/reader lifecycle a live service
/// uses, so the experiments exercise the production path.
#[derive(Debug)]
pub struct Scenario {
    /// The hospital (database already contains the `Groups` table).
    pub hospital: Hospital,
    /// Unfiltered log spec.
    pub spec: LogSpec,
    /// The collaborative-group model (trained on days 1–6, as Figure 12).
    pub groups: GroupsModel,
    /// The hand-crafted template suite.
    pub handcrafted: HandcraftedTemplates,
    /// The snapshot-handoff cell over a copy of `hospital.db` (Groups
    /// included) — the scenario pays one extra database copy so the
    /// epoch's `db`/`engine` pair is structurally consistent no matter
    /// what later happens to `hospital.db`. Figures that pair a database
    /// with [`Scenario::engine`] read [`Scenario::epoch`]`.db()`; figures
    /// that clone and mutate the database build their own engine over the
    /// combined copy instead.
    pub session: SharedEngine,
    /// The epoch pinned at build time — identical data to `hospital.db`.
    epoch: Arc<Epoch>,
}

impl Scenario {
    /// Builds a scenario from a generator config.
    pub fn build(config: SynthConfig) -> Scenario {
        let mut hospital = Hospital::generate(config);
        let spec = LogSpec::conventional(&hospital.db).expect("synth produces a Log table");
        let train = spec.with_filters(split::day_range(&hospital.log_cols, 1, 6));
        let groups = collaborative_groups(&hospital.db, &train, HierarchyConfig::default(), 500)
            .expect("Users table exists");
        install_groups(&mut hospital.db, &groups).expect("Groups table installs");
        let handcrafted =
            HandcraftedTemplates::build(&hospital.db, &spec).expect("CareWeb-shaped schema");
        let session = SharedEngine::new(hospital.db.clone());
        let epoch = session.load();
        Scenario {
            hospital,
            spec,
            groups,
            handcrafted,
            session,
            epoch,
        }
    }

    /// The warm engine of the pinned epoch (same data as `hospital.db`).
    pub fn engine(&self) -> &Engine {
        self.epoch.engine()
    }

    /// The epoch every read-only figure shares.
    pub fn epoch(&self) -> &Epoch {
        &self.epoch
    }

    /// A small scenario for tests.
    pub fn small() -> Scenario {
        Scenario::build(SynthConfig::small())
    }

    /// Spec filtered to day-7 first accesses (the test split).
    pub fn test_spec(&self) -> LogSpec {
        self.spec
            .with_filters(split::days_first(&self.hospital.log_cols, 7, 7))
    }

    /// Spec filtered to days 1–6 first accesses (the mining split).
    pub fn train_spec(&self) -> LogSpec {
        self.spec
            .with_filters(split::days_first(&self.hospital.log_cols, 1, 6))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_builds_with_groups() {
        let s = Scenario::build(SynthConfig::tiny());
        assert!(s.hospital.db.table_id("Groups").is_ok());
        assert!(s.groups.hierarchy.depth_count() >= 2);
        assert!(s.train_spec().anchor_lid_count(&s.hospital.db) > 0);
        assert!(s.test_spec().anchor_lid_count(&s.hospital.db) > 0);
    }

    #[test]
    fn scenario_session_follows_ingests_without_disturbing_the_pinned_epoch() {
        let s = Scenario::build(SynthConfig::tiny());
        let log = s.spec.table;
        let rows_before = s.epoch().db().table(log).len();
        let (_, report) = s.session.ingest(|db| {
            let arity = db.table(log).schema().arity();
            let mut row = vec![eba_relational::Value::Null; arity];
            row[s.spec.lid_col] = eba_relational::Value::Int(1_000_000);
            db.insert(log, row).unwrap();
        });
        assert_eq!(report.seq, 1);
        assert!(report.rebuilt.is_none());
        // The build-time epoch (what the figures share) is frozen...
        assert_eq!(s.epoch().db().table(log).len(), rows_before);
        // ...and the new epoch sees the ingested row.
        assert_eq!(s.session.load().db().table(log).len(), rows_before + 1);
    }

    #[test]
    fn scenario_engine_sees_the_groups_table() {
        let s = Scenario::build(SynthConfig::tiny());
        // The shared engine was built after install_groups, so group
        // templates evaluate through it identically to the cold path.
        let grouped = eba_audit::handcrafted::same_group(
            &s.hospital.db,
            &s.spec,
            eba_audit::handcrafted::EventTable::Appointments,
            Some(1),
        )
        .unwrap();
        assert_eq!(
            grouped
                .explained_rows_with(s.epoch().db(), &s.spec, s.engine())
                .unwrap(),
            grouped.explained_rows(&s.hospital.db, &s.spec).unwrap()
        );
    }
}
