//! The shared experimental setup: one synthetic hospital with
//! collaborative groups installed, mirroring §5's environment.

use eba_audit::groups::{collaborative_groups, install_groups, GroupsModel};
use eba_audit::handcrafted::HandcraftedTemplates;
use eba_audit::split;
use eba_cluster::HierarchyConfig;
use eba_core::LogSpec;
use eba_relational::Engine;
use eba_synth::{Hospital, SynthConfig};

/// A hospital ready for experiments: groups trained on days 1–6 and
/// installed, hand-crafted templates built, and one warm evaluation
/// [`Engine`] shared by every figure that reads the unmodified database.
#[derive(Debug)]
pub struct Scenario {
    /// The hospital (database already contains the `Groups` table).
    pub hospital: Hospital,
    /// Unfiltered log spec.
    pub spec: LogSpec,
    /// The collaborative-group model (trained on days 1–6, as Figure 12).
    pub groups: GroupsModel,
    /// The hand-crafted template suite.
    pub handcrafted: HandcraftedTemplates,
    /// Warm engine over `hospital.db` (Groups included). Figures that
    /// clone and mutate the database build their own engine over the
    /// combined copy instead.
    pub engine: Engine,
}

impl Scenario {
    /// Builds a scenario from a generator config.
    pub fn build(config: SynthConfig) -> Scenario {
        let mut hospital = Hospital::generate(config);
        let spec = LogSpec::conventional(&hospital.db).expect("synth produces a Log table");
        let train = spec.with_filters(split::day_range(&hospital.log_cols, 1, 6));
        let groups = collaborative_groups(&hospital.db, &train, HierarchyConfig::default(), 500)
            .expect("Users table exists");
        install_groups(&mut hospital.db, &groups).expect("Groups table installs");
        let handcrafted =
            HandcraftedTemplates::build(&hospital.db, &spec).expect("CareWeb-shaped schema");
        let engine = Engine::new(&hospital.db);
        Scenario {
            hospital,
            spec,
            groups,
            handcrafted,
            engine,
        }
    }

    /// A small scenario for tests.
    pub fn small() -> Scenario {
        Scenario::build(SynthConfig::small())
    }

    /// Spec filtered to day-7 first accesses (the test split).
    pub fn test_spec(&self) -> LogSpec {
        self.spec
            .with_filters(split::days_first(&self.hospital.log_cols, 7, 7))
    }

    /// Spec filtered to days 1–6 first accesses (the mining split).
    pub fn train_spec(&self) -> LogSpec {
        self.spec
            .with_filters(split::days_first(&self.hospital.log_cols, 1, 6))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_builds_with_groups() {
        let s = Scenario::build(SynthConfig::tiny());
        assert!(s.hospital.db.table_id("Groups").is_ok());
        assert!(s.groups.hierarchy.depth_count() >= 2);
        assert!(s.train_spec().anchor_lid_count(&s.hospital.db) > 0);
        assert!(s.test_spec().anchor_lid_count(&s.hospital.db) > 0);
    }

    #[test]
    fn scenario_engine_sees_the_groups_table() {
        let s = Scenario::build(SynthConfig::tiny());
        // The shared engine was built after install_groups, so group
        // templates evaluate through it identically to the cold path.
        let grouped = eba_audit::handcrafted::same_group(
            &s.hospital.db,
            &s.spec,
            eba_audit::handcrafted::EventTable::Appointments,
            Some(1),
        )
        .unwrap();
        assert_eq!(
            grouped
                .explained_rows_with(&s.hospital.db, &s.spec, &s.engine)
                .unwrap(),
            grouped.explained_rows(&s.hospital.db, &s.spec).unwrap()
        );
    }
}
