//! Figures 10–12: collaborative groups — their composition and their
//! predictive power.

use crate::fig_events::rows_with_any_event_on;
use crate::figure::{FigureResult, FigureRow};
use crate::scenario::Scenario;
use eba_audit::fake::{user_pool, FakeLog};
use eba_audit::handcrafted::{same_department, same_group, EventTable};
use eba_audit::{metrics, split};
use eba_core::ExplanationTemplate;
use eba_relational::{Engine, Value};
use std::collections::HashMap;

/// Figures 10 and 11: department-code composition of discovered top-level
/// groups. The paper showcases a Cancer Center group (oncology physicians,
/// radiology, pathology, clinical trials, pharmacy...) and a Psychiatry
/// group (psychiatry physicians, psych nursing, social work, medical
/// students on rotation) — the point being that collaborative groups cut
/// *across* department codes.
pub fn fig10_11(s: &Scenario) -> Vec<FigureResult> {
    ["Cancer Center", "Psychiatry"]
        .iter()
        .enumerate()
        .map(|(i, specialty)| {
            let fig_id = format!("Figure {}", 10 + i);
            group_composition(s, specialty, &fig_id)
        })
        .collect()
}

fn group_composition(s: &Scenario, specialty: &str, fig_id: &str) -> FigureResult {
    let depth = 1;
    let assignment = s.groups.hierarchy.assignment(depth);
    // Find the depth-1 group holding the most users of this specialty's
    // physician department.
    let mut votes: HashMap<u32, usize> = HashMap::new();
    for (node, &gid) in assignment.iter().enumerate() {
        let user_value = s.groups.user_values[node];
        if let Some(idx) = s.hospital.user_index(user_value) {
            if s.hospital.world.users[idx].department.contains(specialty) {
                *votes.entry(gid).or_default() += 1;
            }
        }
    }
    let mut fig = FigureResult::new(
        fig_id,
        format!("Collaborative group composition ({specialty})"),
        &["Members", "Share"],
    );
    let Some((&gid, _)) = votes.iter().max_by_key(|(_, n)| **n) else {
        fig.note(format!("no users with department containing {specialty:?}"));
        return fig;
    };
    let mut dept_counts: HashMap<&str, usize> = HashMap::new();
    let mut total = 0usize;
    for (node, &g) in assignment.iter().enumerate() {
        if g != gid {
            continue;
        }
        if let Some(idx) = s.hospital.user_index(s.groups.user_values[node]) {
            *dept_counts
                .entry(s.hospital.world.users[idx].department.as_str())
                .or_default() += 1;
            total += 1;
        }
    }
    let mut rows: Vec<(&str, usize)> = dept_counts.into_iter().collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    for (dept, n) in rows {
        fig.push_row(dept, &[n as f64, n as f64 / total.max(1) as f64]);
    }
    fig.note("groups were trained on days 1-6; note the mix of physician, nursing, consult and student codes".to_string());
    fig
}

/// Figure 12: group predictive power on day-7 first accesses, with the
/// fake log of §5.3.2. Depth 0 is the all-users baseline (recall = event
/// coverage, low precision); deeper groups trade recall for precision.
/// `Same Dept.` uses department codes instead of groups and, as in the
/// paper, under-performs them.
pub fn fig12(s: &Scenario) -> FigureResult {
    // Work on a copy: the fake log must not leak into other experiments.
    let mut db = s.hospital.db.clone();
    let n_fake = s.hospital.log_len();
    let users = user_pool(&db);
    let patients: Vec<Value> = (0..s.hospital.world.n_patients())
        .map(|p| s.hospital.patient_value(p))
        .collect();
    let fake = FakeLog::inject(
        &mut db,
        s.hospital.t_log,
        &s.hospital.log_cols,
        &users,
        &patients,
        n_fake,
        s.hospital.config.days,
        0xF1612,
    );

    let spec = s
        .spec
        .with_filters(split::days_first(&s.hospital.log_cols, 7, 7));
    let anchors = metrics::anchor_rows(&db, &spec);
    // One warm engine over the combined database serves every depth's
    // template set, the department baseline, and the headline rows.
    let engine = Engine::new(&db);
    let with_events = rows_with_any_event_on(&db, &spec, &engine);

    let mut fig = FigureResult::new(
        "Figure 12",
        "Group predictive power for first accesses (trained days 1-6, tested day 7)",
        &["Precision", "Recall", "Recall Normalized"],
    );

    // Depth 0: everyone in one group — an access is "explained" iff the
    // patient has any event.
    let c0 = metrics::confusion_from_sets(
        &anchors,
        &with_events,
        |rid| fake.is_fake(rid),
        Some(&with_events),
    );
    fig.push_row(
        "Depth 0",
        &[c0.precision(), c0.recall(), c0.normalized_recall()],
    );

    for depth in 1..s.groups.hierarchy.depth_count() {
        let templates: Vec<ExplanationTemplate> = EventTable::ALL
            .iter()
            .map(|e| same_group(&db, &spec, *e, Some(depth as i64)).expect("Groups installed"))
            .collect();
        let refs: Vec<&ExplanationTemplate> = templates.iter().collect();
        let c = metrics::evaluate_with(&db, &spec, &refs, Some(&fake), Some(&with_events), &engine);
        fig.push_row(
            format!("Depth {depth}"),
            &[c.precision(), c.recall(), c.normalized_recall()],
        );
    }

    let dept_templates: Vec<ExplanationTemplate> = EventTable::ALL
        .iter()
        .map(|e| same_department(&db, &spec, *e).expect("Users table exists"))
        .collect();
    let refs: Vec<&ExplanationTemplate> = dept_templates.iter().collect();
    let c = metrics::evaluate_with(&db, &spec, &refs, Some(&fake), Some(&with_events), &engine);
    fig.push_row(
        "Same Dept.",
        &[c.precision(), c.recall(), c.normalized_recall()],
    );

    // The paper's headline: combining the hand-crafted set with depth-1
    // groups explains over 94% of all day-7 accesses.
    let day7_all = s
        .spec
        .with_filters(split::day_range(&s.hospital.log_cols, 7, 7));
    let basic = s.handcrafted.all_with_repeat();
    let base_recall = {
        let c = metrics::evaluate_with(&db, &day7_all, &basic, Some(&fake), None, &engine);
        c.recall()
    };
    let with_groups_recall = {
        let mut set: Vec<ExplanationTemplate> = basic.iter().map(|t| (*t).clone()).collect();
        for e in EventTable::ALL {
            set.push(same_group(&db, &day7_all, e, Some(1)).expect("Groups installed"));
        }
        set.extend(s.handcrafted.consult().into_iter().cloned());
        let refs: Vec<&ExplanationTemplate> = set.iter().collect();
        metrics::evaluate_with(&db, &day7_all, &refs, Some(&fake), None, &engine).recall()
    };
    fig.rows.push(FigureRow::sparse(
        "Day-7 all accesses: basic set",
        vec![None, Some(base_recall), None],
    ));
    fig.rows.push(FigureRow::sparse(
        "Day-7 all accesses: + groups@1 + consults",
        vec![None, Some(with_groups_recall), None],
    ));
    fig.note("paper: depth 0 explains 81% of first accesses; depth 1 balances precision >90%; combined set explains >94% of all day-7 accesses".to_string());
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use eba_synth::SynthConfig;

    fn scenario() -> Scenario {
        Scenario::build(SynthConfig::tiny())
    }

    #[test]
    fn fig10_11_groups_mix_department_codes() {
        let s = scenario();
        let figs = fig10_11(&s);
        assert_eq!(figs.len(), 2);
        for fig in &figs {
            assert!(
                fig.rows.len() >= 2,
                "{} should mix several department codes, got {}",
                fig.id,
                fig.rows.len()
            );
            // Shares sum to ~1.
            let total: f64 = fig.rows.iter().filter_map(|r| r.values[1]).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn fig12_depth_tradeoff() {
        let s = scenario();
        let fig = fig12(&s);
        let d0_recall = fig.value("Depth 0", 1).unwrap();
        let d0_precision = fig.value("Depth 0", 0).unwrap();
        let d1_recall = fig.value("Depth 1", 1).unwrap();
        let d1_precision = fig.value("Depth 1", 0).unwrap();
        // Depth 0 has the highest recall (it is the upper bound: any-event).
        assert!(d0_recall >= d1_recall - 1e-9);
        // Restricting to real groups improves precision.
        assert!(
            d1_precision >= d0_precision - 1e-9,
            "depth-1 precision {d1_precision} < depth-0 {d0_precision}"
        );
        // Recall decreases (weakly) with depth.
        let mut prev = d1_recall;
        for depth in 2..s.groups.hierarchy.depth_count() {
            if let Some(r) = fig.value(&format!("Depth {depth}"), 1) {
                assert!(r <= prev + 1e-9, "recall must not grow with depth");
                prev = r;
            }
        }
    }

    #[test]
    fn fig12_groups_beat_department_codes() {
        let s = scenario();
        let fig = fig12(&s);
        let d1_recall = fig.value("Depth 1", 1).unwrap();
        let dept_recall = fig.value("Same Dept.", 1).unwrap();
        assert!(
            d1_recall >= dept_recall,
            "groups ({d1_recall}) should outperform department codes ({dept_recall})"
        );
    }

    #[test]
    fn fig12_headline_grows_with_groups() {
        let s = scenario();
        let fig = fig12(&s);
        let base = fig.value("Day-7 all accesses: basic set", 1).unwrap();
        let full = fig
            .value("Day-7 all accesses: + groups@1 + consults", 1)
            .unwrap();
        assert!(full >= base);
        assert!(full > 0.75, "headline day-7 recall {full} too low");
    }
}
