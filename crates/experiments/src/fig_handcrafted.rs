//! Figures 7 and 9: recall of the hand-crafted explanation templates.

use crate::figure::{FigureResult, FigureRow};
use crate::scenario::Scenario;
use eba_audit::{metrics, split};
use eba_core::{ExplanationTemplate, LogSpec};
use std::collections::HashSet;

fn handcrafted_figure(
    s: &Scenario,
    spec: &LogSpec,
    id: &str,
    title: &str,
    include_repeat: bool,
    paper: &[(&str, f64)],
) -> FigureResult {
    // The epoch's database: provably the state the scenario engine was
    // built over (identical content to `s.hospital.db`).
    let db = s.epoch().db();
    let denominator = metrics::anchor_rows(db, spec).len().max(1) as f64;
    let mut fig = FigureResult::new(id, title, &["Recall", "Paper"]);
    let paper_of = |label: &str| paper.iter().find(|(l, _)| *l == label).map(|(_, v)| *v);

    let mut entries: Vec<(&str, &ExplanationTemplate)> = vec![
        ("Appt w/Dr.", &s.handcrafted.appt_with_dr),
        ("Visit w/Dr.", &s.handcrafted.visit_with_dr),
        ("Doc. w/Dr.", &s.handcrafted.doc_with_dr),
    ];
    if include_repeat {
        entries.push(("Repeat Access", &s.handcrafted.repeat_access));
    }

    let mut all: HashSet<eba_relational::RowId> = HashSet::new();
    for (label, t) in &entries {
        let rows = metrics::explained_union_with(db, spec, &[t], s.engine());
        fig.rows.push(FigureRow::sparse(
            (*label).to_string(),
            vec![Some(rows.len() as f64 / denominator), paper_of(label)],
        ));
        all.extend(rows);
    }
    fig.rows.push(FigureRow::sparse(
        "All w/Dr.".to_string(),
        vec![Some(all.len() as f64 / denominator), paper_of("All w/Dr.")],
    ));

    // The consult-order templates (data set B), which the paper added
    // after finding consult services unexplained.
    let consult = metrics::explained_union_with(
        db,
        spec,
        &s.handcrafted.consult().into_iter().collect::<Vec<_>>(),
        s.engine(),
    );
    let mut with_consult = all;
    with_consult.extend(consult);
    fig.rows.push(FigureRow::sparse(
        "All + consults".to_string(),
        vec![Some(with_consult.len() as f64 / denominator), None],
    ));
    fig
}

/// Figure 7: hand-crafted template recall over **all** accesses. Paper:
/// repeats still explain a majority; the w/Dr. templates alone reach ~90%
/// combined.
pub fn fig07(s: &Scenario) -> FigureResult {
    let mut fig = handcrafted_figure(
        s,
        &s.spec,
        "Figure 7",
        "Hand-crafted explanations' recall (all accesses)",
        true,
        &[
            ("Appt w/Dr.", 0.27),
            ("Visit w/Dr.", 0.02),
            ("Doc. w/Dr.", 0.25),
            ("Repeat Access", 0.62),
            ("All w/Dr.", 0.90),
        ],
    );
    fig.note(
        "events reference only the primary doctor, so recall is below Figure 6's event frequency"
            .to_string(),
    );
    fig
}

/// Figure 9: the same over **first** accesses only. Paper: the basic
/// templates explain only ~11% of first accesses even though ~75% of those
/// patients have an event — the gap the collaborative groups close.
pub fn fig09(s: &Scenario) -> FigureResult {
    let spec = s.spec.with_filters(split::first_only(&s.hospital.log_cols));
    let mut fig = handcrafted_figure(
        s,
        &spec,
        "Figure 9",
        "Hand-crafted explanations' recall (first accesses)",
        false,
        &[
            ("Appt w/Dr.", 0.06),
            ("Visit w/Dr.", 0.01),
            ("Doc. w/Dr.", 0.05),
            ("All w/Dr.", 0.11),
        ],
    );
    fig.note(
        "the gap to Figure 8's ~75% event coverage motivates §4's missing-data inference"
            .to_string(),
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig_events;
    use eba_synth::SynthConfig;

    fn scenario() -> Scenario {
        Scenario::build(SynthConfig::tiny())
    }

    #[test]
    fn fig07_all_is_union_and_repeat_dominates() {
        let s = scenario();
        let fig = fig07(&s);
        let all = fig.value("All w/Dr.", 0).unwrap();
        for label in ["Appt w/Dr.", "Visit w/Dr.", "Doc. w/Dr.", "Repeat Access"] {
            assert!(fig.value(label, 0).unwrap() <= all + 1e-9);
        }
        // Repeats are the largest single category, as in the paper.
        let repeat = fig.value("Repeat Access", 0).unwrap();
        assert!(repeat >= fig.value("Appt w/Dr.", 0).unwrap());
        assert!(repeat >= fig.value("Doc. w/Dr.", 0).unwrap());
    }

    #[test]
    fn fig09_first_access_recall_is_far_below_event_coverage() {
        let s = scenario();
        let coverage = fig_events::fig08(&s).value("All", 0).unwrap();
        let recall = fig09(&s).value("All w/Dr.", 0).unwrap();
        assert!(
            recall < coverage * 0.75,
            "w/Dr. recall {recall} should sit well below event coverage {coverage}"
        );
    }

    #[test]
    fn handcrafted_recall_never_exceeds_event_frequency() {
        // An access explained by "appointment with the accessing doctor"
        // implies the patient has an appointment.
        let s = scenario();
        let f6 = fig_events::fig06(&s);
        let f7 = fig07(&s);
        assert!(f7.value("Appt w/Dr.", 0).unwrap() <= f6.value("Appt", 0).unwrap() + 1e-9);
        assert!(f7.value("Visit w/Dr.", 0).unwrap() <= f6.value("Visit", 0).unwrap() + 1e-9);
    }

    #[test]
    fn consults_extend_coverage() {
        let s = scenario();
        let fig = fig07(&s);
        assert!(fig.value("All + consults", 0).unwrap() >= fig.value("All w/Dr.", 0).unwrap());
    }
}
