//! A tiny criterion-compatible benchmark harness.
//!
//! The build environment has no network access to fetch `criterion`, so the
//! bench targets (declared `harness = false`) use this drop-in subset
//! instead: [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Each benchmark takes `sample_size` timed
//! samples (after one warm-up call) and reports the **median**.
//!
//! The perf-tracker binaries (`mining-bench` → `BENCH_mining.json`,
//! `audit-bench` → `BENCH_audit.json`) share the comparative-workload
//! machinery here: [`measure`], [`Workload`], [`geomean_speedup`],
//! [`print_workloads`], and [`write_bench_json`], so both snapshots record
//! `threads` and per-workload sample counts in the same shape and stay
//! diffable across PRs.

use std::time::{Duration, Instant};

/// One comparative measurement: the same work done the slow way
/// (`baseline`) and through the engine (`engine`).
#[derive(Debug, Clone)]
pub struct Workload {
    /// `group/name` identifier.
    pub name: String,
    /// Median duration of the per-query / cold path.
    pub baseline: Duration,
    /// Median duration of the engine-backed path.
    pub engine: Duration,
    /// Timed samples behind each median.
    pub samples: usize,
    /// Optional qualitative finding the durations alone cannot carry
    /// (e.g. the concurrent workload's "reader answered while the ingest
    /// was still in flight" count); lands in the JSON snapshot.
    pub note: Option<String>,
}

impl Workload {
    /// Measures both sides of a workload with the same sample count.
    pub fn compare(
        name: impl Into<String>,
        samples: usize,
        baseline: impl FnMut(),
        engine: impl FnMut(),
    ) -> Workload {
        Workload {
            name: name.into(),
            baseline: measure(samples, baseline),
            engine: measure(samples, engine),
            samples,
            note: None,
        }
    }

    /// `baseline / engine` (guarding the zero-duration case).
    pub fn speedup(&self) -> f64 {
        self.baseline.as_secs_f64() / self.engine.as_secs_f64().max(1e-12)
    }
}

/// Median duration of `samples` timed calls (after one warm-up call).
pub fn measure(samples: usize, mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    let durations: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    median(&durations)
}

/// Geometric mean of the workloads' speedups.
pub fn geomean_speedup(workloads: &[Workload]) -> f64 {
    if workloads.is_empty() {
        return 1.0;
    }
    (workloads.iter().map(|w| w.speedup().ln()).sum::<f64>() / workloads.len() as f64).exp()
}

/// Prints the comparative table the perf-tracker binaries show.
pub fn print_workloads(workloads: &[Workload]) {
    println!(
        "{:<28} {:>14} {:>14} {:>9}",
        "workload", "baseline", "engine", "speedup"
    );
    for w in workloads {
        println!(
            "{:<28} {:>14} {:>14} {:>8.2}x",
            w.name,
            format_duration(w.baseline),
            format_duration(w.engine),
            w.speedup()
        );
        if let Some(note) = &w.note {
            println!("    ^ {note}");
        }
    }
    println!("geomean speedup: {:.2}x", geomean_speedup(workloads));
}

/// Writes the `BENCH_*.json` shape shared by `mining-bench` and
/// `audit-bench`: generator, scale, thread count, and one entry per
/// workload with both medians, the speedup, and the sample count.
pub fn write_bench_json(
    path: &str,
    generated_by: &str,
    scale: &str,
    threads: usize,
    workloads: &[Workload],
) -> std::io::Result<()> {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"generated_by\": \"{generated_by}\",\n"));
    json.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str("  \"workloads\": [\n");
    for (i, w) in workloads.iter().enumerate() {
        let note = match &w.note {
            Some(n) => format!(", \"note\": \"{}\"", escape_json(n)),
            None => String::new(),
        };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"baseline_median_ms\": {:.3}, \"engine_median_ms\": {:.3}, \"speedup\": {:.2}, \"samples\": {}{}}}{}\n",
            w.name,
            w.baseline.as_secs_f64() * 1e3,
            w.engine.as_secs_f64() * 1e3,
            w.speedup(),
            w.samples,
            note,
            if i + 1 < workloads.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"geomean_speedup\": {:.2}\n",
        geomean_speedup(workloads)
    ));
    json.push_str("}\n");
    std::fs::write(path, json)
}

/// Minimal JSON string escaping for free-text fields (quotes, backslashes
/// and control characters) so a note can never corrupt the snapshot.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Summary {
    /// `group/name` identifier.
    pub id: String,
    /// Median sample duration.
    pub median: Duration,
    /// Number of timed samples.
    pub samples: usize,
}

/// Top-level driver (subset of criterion's).
#[derive(Debug, Default)]
pub struct Criterion {
    summaries: Vec<Summary>,
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }

    /// All measurements taken so far.
    pub fn summaries(&self) -> &[Summary] {
        &self.summaries
    }
}

/// A benchmark identifier with an input parameter, e.g. `one_way/4`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: &str, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// A named group sharing a sample size.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            durations: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.record(&id, b);
        self
    }

    /// Benchmarks `f` with an input reference (criterion-style).
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            durations: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.record(&id, b);
        self
    }

    /// Ends the group (report lines are printed as benchmarks run).
    pub fn finish(&mut self) {}

    fn record(&mut self, id: &BenchmarkId, b: Bencher) {
        let summary = Summary {
            id: format!("{}/{}", self.name, id.0),
            median: median(&b.durations),
            samples: b.durations.len(),
        };
        println!(
            "{:<44} median {:>12} ({} samples)",
            summary.id,
            format_duration(summary.median),
            summary.samples
        );
        self.parent.summaries.push(summary);
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    durations: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once for warm-up, then `sample_size` timed times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f());
        self.durations.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.durations.push(start.elapsed());
        }
    }
}

/// Median of a set of samples (zero when empty).
pub fn median(durations: &[Duration]) -> Duration {
    if durations.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = durations.to_vec();
    sorted.sort_unstable();
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2
    }
}

/// `1.234 ms`-style rendering.
pub fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a benchmark suite function (criterion-compatible shape).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::harness::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` running one or more suites.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        let d = |ms| Duration::from_millis(ms);
        assert_eq!(median(&[d(3), d(1), d(2)]), d(2));
        assert_eq!(
            median(&[d(1), d(2), d(3), d(10)]),
            d(2) + Duration::from_micros(500)
        );
        assert_eq!(median(&[]), Duration::ZERO);
    }

    #[test]
    fn groups_collect_summaries() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("fast", |b| b.iter(|| 1 + 1));
            g.bench_with_input(BenchmarkId::new("param", 7), &7usize, |b, n| {
                b.iter(|| n * 2)
            });
            g.finish();
        }
        assert_eq!(c.summaries().len(), 2);
        assert_eq!(c.summaries()[0].id, "g/fast");
        assert_eq!(c.summaries()[1].id, "g/param/7");
        assert_eq!(c.summaries()[0].samples, 3);
    }

    #[test]
    fn workload_speedup_and_geomean() {
        let w = |b: u64, e: u64| Workload {
            name: "w".into(),
            baseline: Duration::from_millis(b),
            engine: Duration::from_millis(e),
            samples: 3,
            note: None,
        };
        assert!((w(40, 10).speedup() - 4.0).abs() < 1e-9);
        // geomean(4x, 1x) = 2x.
        assert!((geomean_speedup(&[w(40, 10), w(10, 10)]) - 2.0).abs() < 1e-9);
        assert_eq!(geomean_speedup(&[]), 1.0);
    }

    #[test]
    fn bench_json_shape() {
        let w = Workload {
            name: "suite/all".into(),
            baseline: Duration::from_millis(12),
            engine: Duration::from_millis(3),
            samples: 5,
            note: Some("readers overlapped 5/5 ingests".into()),
        };
        let dir = std::env::temp_dir().join("eba_bench_json_shape_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        write_bench_json(path.to_str().unwrap(), "audit-bench", "tiny", 4, &[w]).unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        for needle in [
            "\"generated_by\": \"audit-bench\"",
            "\"threads\": 4",
            "\"samples\": 5",
            "\"baseline_median_ms\": 12.000",
            "\"engine_median_ms\": 3.000",
            "\"speedup\": 4.00",
            "\"note\": \"readers overlapped 5/5 ingests\"",
            "\"geomean_speedup\": 4.00",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.500 ms");
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
