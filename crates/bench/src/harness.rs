//! A tiny criterion-compatible benchmark harness.
//!
//! The build environment has no network access to fetch `criterion`, so the
//! bench targets (declared `harness = false`) use this drop-in subset
//! instead: [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Each benchmark takes `sample_size` timed
//! samples (after one warm-up call) and reports the **median**, which is
//! also what the `mining-bench` binary records into `BENCH_mining.json`.

use std::time::{Duration, Instant};

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Summary {
    /// `group/name` identifier.
    pub id: String,
    /// Median sample duration.
    pub median: Duration,
    /// Number of timed samples.
    pub samples: usize,
}

/// Top-level driver (subset of criterion's).
#[derive(Debug, Default)]
pub struct Criterion {
    summaries: Vec<Summary>,
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }

    /// All measurements taken so far.
    pub fn summaries(&self) -> &[Summary] {
        &self.summaries
    }
}

/// A benchmark identifier with an input parameter, e.g. `one_way/4`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: &str, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// A named group sharing a sample size.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            durations: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.record(&id, b);
        self
    }

    /// Benchmarks `f` with an input reference (criterion-style).
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            durations: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.record(&id, b);
        self
    }

    /// Ends the group (report lines are printed as benchmarks run).
    pub fn finish(&mut self) {}

    fn record(&mut self, id: &BenchmarkId, b: Bencher) {
        let summary = Summary {
            id: format!("{}/{}", self.name, id.0),
            median: median(&b.durations),
            samples: b.durations.len(),
        };
        println!(
            "{:<44} median {:>12} ({} samples)",
            summary.id,
            format_duration(summary.median),
            summary.samples
        );
        self.parent.summaries.push(summary);
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    durations: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once for warm-up, then `sample_size` timed times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f());
        self.durations.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.durations.push(start.elapsed());
        }
    }
}

/// Median of a set of samples (zero when empty).
pub fn median(durations: &[Duration]) -> Duration {
    if durations.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = durations.to_vec();
    sorted.sort_unstable();
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2
    }
}

/// `1.234 ms`-style rendering.
pub fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a benchmark suite function (criterion-compatible shape).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::harness::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` running one or more suites.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        let d = |ms| Duration::from_millis(ms);
        assert_eq!(median(&[d(3), d(1), d(2)]), d(2));
        assert_eq!(
            median(&[d(1), d(2), d(3), d(10)]),
            d(2) + Duration::from_micros(500)
        );
        assert_eq!(median(&[]), Duration::ZERO);
    }

    #[test]
    fn groups_collect_summaries() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("fast", |b| b.iter(|| 1 + 1));
            g.bench_with_input(BenchmarkId::new("param", 7), &7usize, |b, n| {
                b.iter(|| n * 2)
            });
            g.finish();
        }
        assert_eq!(c.summaries().len(), 2);
        assert_eq!(c.summaries()[0].id, "g/fast");
        assert_eq!(c.summaries()[1].id, "g/param/7");
        assert_eq!(c.summaries()[0].samples, 3);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.500 ms");
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
