//! # eba-bench
//!
//! Benchmarks and the `reproduce` binary.
//!
//! * `cargo run -p eba-bench --release --bin reproduce` regenerates every
//!   table and figure of the paper's evaluation (optionally a single one:
//!   `-- fig13`, and `--scale tiny|small|default`, `--csv <dir>`).
//! * `cargo bench -p eba-bench --bench mining` measures the three mining
//!   algorithms (Figure 13's subject).
//! * `cargo bench -p eba-bench --bench ablation` measures the §3.2.1
//!   optimizations individually.
//! * `cargo bench -p eba-bench --bench engine` measures the relational
//!   substrate's support-query evaluation.
//! * `cargo bench -p eba-bench --bench clustering` measures `W = AᵀA`
//!   construction and Louvain clustering.

pub mod harness;

use eba_synth::SynthConfig;

/// Resolves a `--scale` argument.
pub fn scale_config(name: &str) -> Option<SynthConfig> {
    match name {
        "tiny" => Some(SynthConfig::tiny()),
        "small" => Some(SynthConfig::small()),
        "default" => Some(SynthConfig::default_scale()),
        _ => None,
    }
}

/// A bench-sized hospital: between `tiny` and `small`, fast enough for
/// Criterion's repeated runs in release mode.
pub fn bench_config() -> SynthConfig {
    SynthConfig {
        n_patients: 800,
        n_teams: 8,
        n_float_accesses: 400,
        ..SynthConfig::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_resolve() {
        assert!(scale_config("tiny").is_some());
        assert!(scale_config("small").is_some());
        assert!(scale_config("default").is_some());
        assert!(scale_config("nope").is_none());
    }

    #[test]
    fn bench_config_is_mid_sized() {
        let b = bench_config();
        assert!(b.n_patients > SynthConfig::tiny().n_patients);
        assert!(b.n_patients <= SynthConfig::default_scale().n_patients);
    }
}
