//! Audit-performance tracker: the per-query audit layer vs the shared
//! warm [`Engine`], plus incremental snapshot refresh vs full rebuild.
//!
//! ```text
//! audit-bench [--json PATH] [--samples N] [--scale tiny|small|default|bench] [--append N]
//!             [--shards N]
//! ```
//!
//! The paper's operational loop is an auditor repeatedly asking "which
//! accesses does this template suite explain?" over an append-only log.
//! Three workload families measure that loop:
//!
//! * **warm-engine suite evaluation** (`suite/*`, `timeline/daily`,
//!   `portal/misuse`): the audit layer's per-query path (every call
//!   re-scans tables per template) vs one warm engine answering the suite
//!   as a fanned-out batch;
//! * **cold vs warm engine** (`engine/cold_build`): constructing a fresh
//!   engine per question vs holding one across questions;
//! * **sharded scatter-gather** (`shard/suite_scatter_gather{N}`): the
//!   suite evaluated by an N-shard [`eba_relational::ShardedEngine`]
//!   epoch vector — per-shard engines in parallel, global merge — vs the
//!   warm single engine (`--shards N` restricts the sweep to one count,
//!   the CI smoke runs `--shards 4`);
//! * **incremental append** (`refresh/append*`): `Engine::refresh` after a
//!   batch of log appends vs re-snapshotting the whole database;
//! * **concurrent handoff** (`concurrent/reader_during_ingest*`): reader
//!   sessions fire the suite question at the exact moment an
//!   ingest+refresh cycle is in flight. Baseline is the coarse-locked
//!   service `&mut Engine` forces (one mutex over the database and
//!   engine — the reader waits out the whole ingest+refresh and every
//!   other reader); the engine side is [`SharedEngine`]'s epoch handoff,
//!   where readers answer from a pinned immutable epoch and are never
//!   blocked. The recorded statistic is the per-cycle worst reader
//!   latency (median over cycles) — the tail a service's SLO is made of.
//! * **served handoff** (`server/reader_during_ingest*`): the same
//!   reader-vs-ingesting-writer duel, but the engine side runs against a
//!   live `eba-serve` instance over **real TCP sockets** — persistent
//!   reader sessions issue `REPIN` + `METRICS` while a writer connection
//!   drives `INGEST` batches through the protocol's single-writer path.
//!   Baseline is the same coarse-locked in-process service (which pays
//!   *no* socket cost, so the comparison is conservative); the note
//!   records the reader latency percentiles over every socket question.
//!
//! Every engine-backed result is asserted equal to the per-query result
//! before timing. With `--json` the medians land in `BENCH_audit.json`
//! (same schema as `BENCH_mining.json`, shared via
//! [`eba_bench::harness::write_bench_json`]).

use eba_audit::fake::{user_pool, FakeLog};
use eba_audit::handcrafted::{same_group, EventTable};
use eba_audit::{portal, timeline, Explainer};
use eba_bench::harness::{print_workloads, write_bench_json, Workload};
use eba_bench::{bench_config, scale_config};
use eba_core::LogSpec;
use eba_experiments::Scenario;
use eba_relational::{
    ChainQuery, CmpOp, Database, Engine, EvalOptions, Rhs, RowId, RowSet, SharedEngine, StepFilter,
    Value,
};
use eba_synth::LogColumns;
use std::sync::Mutex;
use std::time::{Duration, Instant};

fn main() {
    let mut json_path: Option<String> = None;
    let mut samples = 5usize;
    let mut scale = "bench".to_string();
    let mut append = 500usize;
    let mut shard_counts = vec![1usize, 4, 8];
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                json_path = Some(args.next().unwrap_or_else(|| usage("missing --json path")))
            }
            "--samples" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("missing --samples value"));
                samples = v
                    .parse()
                    .unwrap_or_else(|_| usage("--samples expects an integer"));
            }
            "--scale" => {
                scale = args
                    .next()
                    .unwrap_or_else(|| usage("missing --scale value"))
            }
            "--append" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("missing --append value"));
                append = v
                    .parse()
                    .unwrap_or_else(|_| usage("--append expects an integer"));
            }
            "--shards" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("missing --shards value"));
                let n: usize = v
                    .parse()
                    .unwrap_or_else(|_| usage("--shards expects a positive integer"));
                if n == 0 {
                    usage("--shards expects a positive integer");
                }
                shard_counts = vec![n];
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    let config = if scale == "bench" {
        bench_config()
    } else {
        scale_config(&scale).unwrap_or_else(|| usage(&format!("unknown scale `{scale}`")))
    };

    eprintln!("# generating hospital (scale={scale})...");
    let scenario = Scenario::build(config);
    let spec = &scenario.spec;
    let db = &scenario.hospital.db;
    let days = scenario.hospital.config.days;
    let cols = &scenario.hospital.log_cols;
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "# {} log rows, {} threads, {} samples per measurement",
        scenario.hospital.log_len(),
        threads,
        samples
    );

    // The auditor's suite: every hand-crafted template (including the
    // anchor-dependent repeat-access one, which exercises the engine's
    // row-map-backed per-row path) plus the depth-1 collaborative-group
    // templates.
    let mut templates: Vec<_> = scenario.handcrafted.all().into_iter().cloned().collect();
    for e in EventTable::ALL {
        templates.push(same_group(db, spec, e, Some(1)).expect("Groups installed"));
    }
    let explainer = Explainer::new(templates);

    // One warm engine for the whole session (the scenario's own engine is
    // left untouched so the workloads control their cache state).
    let engine = Engine::new(db);

    // Differential guard: every engine-backed view must equal the
    // per-query view before we time anything.
    assert_eq!(
        explainer.explained_rows_with(db, spec, &engine),
        explainer.explained_rows(db, spec),
        "engine changed the explained set"
    );
    assert_eq!(
        explainer.unexplained_rows_with(db, spec, &engine),
        explainer.unexplained_rows(db, spec),
        "engine changed the unexplained set"
    );
    assert_eq!(
        timeline::daily_stats_with(db, spec, cols, &explainer, days, &engine),
        timeline::daily_stats(db, spec, cols, &explainer, days),
        "engine changed the timeline"
    );
    assert_eq!(
        portal::misuse_summary_with(db, spec, &explainer, &engine),
        portal::misuse_summary(db, spec, &explainer),
        "engine changed the misuse summary"
    );

    let mut workloads: Vec<Workload> = Vec::new();
    workloads.push(Workload::compare(
        "suite/explained",
        samples,
        || {
            explainer.explained_rows(db, spec);
        },
        || {
            explainer.explained_rows_with(db, spec, &engine);
        },
    ));
    workloads.push(Workload::compare(
        "suite/unexplained",
        samples,
        || {
            explainer.unexplained_rows(db, spec);
        },
        || {
            explainer.unexplained_rows_with(db, spec, &engine);
        },
    ));
    workloads.push(Workload::compare(
        "timeline/daily",
        samples,
        || {
            timeline::daily_stats(db, spec, cols, &explainer, days);
        },
        || {
            timeline::daily_stats_with(db, spec, cols, &explainer, days, &engine);
        },
    ));
    workloads.push(Workload::compare(
        "portal/misuse",
        samples,
        || {
            portal::misuse_summary(db, spec, &explainer);
        },
        || {
            portal::misuse_summary_with(db, spec, &explainer, &engine);
        },
    ));
    // Cold engine per question vs one warm engine across questions.
    workloads.push(Workload::compare(
        "engine/cold_build",
        samples,
        || {
            let cold = Engine::new(db);
            explainer.explained_rows_with(db, spec, &cold);
        },
        || {
            explainer.explained_rows_with(db, spec, &engine);
        },
    ));

    // The fused single-pass driver against the old per-template loop, at
    // policy-family sizes 1 and 8: the anchor-dependent repeat-access
    // template plus "repeat access since day D" variants (one extra
    // constant decoration each), the paper's decorated-template class.
    // Per template the old path scans the whole log; the fused driver
    // scans it once, reading each anchor row's candidate set once and
    // testing it against every policy's decorations. fused1 prices the
    // driver's own overhead — one policy gives fusion nothing to
    // amortize. The guard asserts the fused sets equal the per-template
    // path slot for slot before anything is timed.
    let all_queries: Vec<ChainQuery> = explainer
        .templates()
        .iter()
        .map(|t| t.path.to_chain_query(spec))
        .collect();
    let opts = EvalOptions::default();
    let policy_family: Vec<ChainQuery> = {
        let date_col = db
            .table(spec.table)
            .schema()
            .col("Date")
            .expect("log has a Date column");
        let base = &scenario.handcrafted.repeat_access.path;
        let mut family = vec![base.to_chain_query(spec)];
        for i in 1..8i64 {
            let since_minutes = i * (days as i64) / 8 * 24 * 60;
            let path = base
                .decorated(
                    1,
                    StepFilter {
                        col: date_col,
                        op: CmpOp::Ge,
                        rhs: Rhs::Const(Value::Date(since_minutes)),
                    },
                )
                .expect("alias 1 exists");
            family.push(path.to_chain_query(spec));
        }
        family
    };
    for &k in &[1usize, 8] {
        let k = k.min(policy_family.len());
        let fused_suite = &policy_family[..k];
        let per_template: Vec<Vec<RowId>> = fused_suite
            .iter()
            .map(|q| engine.explained_rows(db, q, opts).expect("valid suite"))
            .collect();
        let fused: Vec<Vec<RowId>> = engine
            .eval_suite(db, fused_suite, opts)
            .into_iter()
            .map(|s| s.expect("valid suite").to_vec())
            .collect();
        assert_eq!(fused, per_template, "fused driver changed a suite answer");
        let mut w = Workload::compare(
            format!("suite/fused{k}"),
            samples,
            || {
                for q in fused_suite {
                    std::hint::black_box(engine.explained_rows(db, q, opts).expect("valid"));
                }
            },
            || {
                std::hint::black_box(engine.eval_suite(db, fused_suite, opts));
            },
        );
        w.note = Some(format!(
            "one fused log scan vs {k} per-template scan(s) of the decorated \
             repeat-access policy family, same warm engine; guard asserted \
             identical explained sets slot for slot"
        ));
        workloads.push(w);
    }

    // The compressed row-set algebra against hash-set algebra, over the
    // *real* suite answers: union every template's explained set, then
    // subtract the union from the anchor rows (the unexplained residue).
    // The guard asserts both algebras produce the same sorted residue.
    {
        let suite_sets: Vec<Vec<RowId>> = all_queries
            .iter()
            .map(|q| engine.explained_rows(db, q, opts).expect("valid suite"))
            .collect();
        let suite_rowsets: Vec<RowSet> = suite_sets
            .iter()
            .map(|v| RowSet::from_sorted_vec(v))
            .collect();
        let anchors = eba_audit::metrics::anchor_rows(db, spec);
        let anchor_set = RowSet::from_sorted_vec(&anchors);
        let via_hash: Vec<RowId> = {
            let mut union: std::collections::HashSet<RowId> = std::collections::HashSet::new();
            for s in &suite_sets {
                union.extend(s.iter().copied());
            }
            anchors
                .iter()
                .copied()
                .filter(|r| !union.contains(r))
                .collect()
        };
        let via_rowset = anchor_set
            .difference(&RowSet::union_all(suite_rowsets.iter().cloned()))
            .to_vec();
        assert_eq!(via_rowset, via_hash, "row-set algebra changed the residue");
        workloads.push(Workload::compare(
            "rowset/union_difference",
            samples,
            || {
                let mut union: std::collections::HashSet<RowId> = std::collections::HashSet::new();
                for s in &suite_sets {
                    union.extend(s.iter().copied());
                }
                let residue: Vec<RowId> = anchors
                    .iter()
                    .copied()
                    .filter(|r| !union.contains(r))
                    .collect();
                std::hint::black_box(residue.len());
            },
            || {
                let union = RowSet::union_all(suite_rowsets.iter().cloned());
                std::hint::black_box(anchor_set.difference(&union).len());
            },
        ));
    }

    // Sharded scatter-gather: the whole suite fanned out over N
    // hash-partitioned shards evaluated in parallel and merged, vs the
    // same warm single engine answering it sequentially. Shard count 1
    // prices the epoch-vector layer itself (it should be noise); 4 and 8
    // show what per-shard parallelism buys. The differential guard
    // asserts the merged global explained set equals the single-engine
    // set before anything is timed.
    for &n_shards in &shard_counts {
        let sharded = eba_relational::ShardedEngine::new(
            db.clone(),
            eba_relational::ShardKey {
                table: spec.table,
                col: spec.patient_col,
            },
            n_shards,
        );
        let vec = sharded.load();
        explainer.explained_rows_at_shards(spec, &vec); // warm per-shard caches
        assert_eq!(
            explainer.explained_rows_at_shards(spec, &vec),
            explainer.explained_rows_with(db, spec, &engine),
            "{n_shards}-shard scatter-gather changed the explained set"
        );
        workloads.push(Workload::compare(
            format!("shard/suite_scatter_gather{n_shards}"),
            samples,
            || {
                explainer.explained_rows_with(db, spec, &engine);
            },
            || {
                explainer.explained_rows_at_shards(spec, &vec);
            },
        ));
    }

    let users = user_pool(db);
    let patients: Vec<Value> = (0..scenario.hospital.world.n_patients())
        .map(|p| scenario.hospital.patient_value(p))
        .collect();
    let t_log = scenario.hospital.t_log;

    // Incremental append: after each batch of `append` fresh log rows, an
    // engine is brought up to date — by full re-snapshot (baseline) vs
    // `Engine::refresh` (engine). The appends themselves are *outside* the
    // timed region (ingest happens either way); both sides grow their own
    // database clone at the same rate so the comparison stays balanced
    // across samples.
    {
        let timed_appends = |side: &mut dyn FnMut(&mut eba_relational::Database),
                             db_side: &mut eba_relational::Database,
                             seed0: u64|
         -> std::time::Duration {
            // One warm-up round, then `samples` timed rounds (matching
            // `measure`'s shape), each preceded by an untimed append batch.
            let mut durations = Vec::with_capacity(samples);
            for i in 0..=samples {
                FakeLog::inject(
                    db_side,
                    t_log,
                    cols,
                    &users,
                    &patients,
                    append,
                    days,
                    seed0 + i as u64,
                );
                let start = std::time::Instant::now();
                side(db_side);
                let elapsed = start.elapsed();
                if i > 0 {
                    durations.push(elapsed);
                }
            }
            eba_bench::harness::median(&durations)
        };

        let mut db_rebuild = db.clone();
        let baseline = timed_appends(
            &mut |d| {
                Engine::new(d);
            },
            &mut db_rebuild,
            0xA0D17,
        );

        let mut db_refresh = db.clone();
        let mut warm = Engine::new(&db_refresh);
        // Warm the caches the way a live session would have.
        explainer.explained_rows_with(&db_refresh, spec, &warm);
        let engine_side = timed_appends(
            &mut |d| {
                warm.refresh(d).expect("append-only refresh succeeds");
            },
            &mut db_refresh,
            0xB0D17,
        );
        workloads.push(Workload {
            name: format!("refresh/append{append}"),
            baseline,
            engine: engine_side,
            samples,
            note: None,
        });

        // The refreshed engine must agree with a fresh snapshot of the
        // grown database.
        let fresh = Engine::new(&db_refresh);
        assert_eq!(
            explainer.explained_rows_with(&db_refresh, spec, &warm),
            explainer.explained_rows_with(&db_refresh, spec, &fresh),
            "refresh diverged from a fresh snapshot"
        );
        assert_eq!(
            explainer.explained_rows_with(&db_refresh, spec, &warm),
            explainer.explained_rows(&db_refresh, spec),
            "refresh diverged from the per-query path"
        );
    }

    // Epoch publication cost: what one published epoch *copies*. The
    // baseline simulates flat storage — every `Value` cell of the
    // database plus every interned `u32` cell of the engine snapshot is
    // copied, which is exactly the memcpy a flat `Database::clone` +
    // `Engine::fork` paid per ingest. The engine side runs the real
    // thing: a full segmented `SharedEngine::ingest` (clone + fork +
    // incremental refresh + publish), which shares all sealed segments
    // and copies only tails — `O(batch)`. The `_large` variant re-runs
    // both sides after growing the database ~8x with the *same* batch
    // size: the flat copy grows with the database, the segmented
    // publication does not. The note records the copy-meter evidence.
    {
        let shared = SharedEngine::new(db.clone());
        explainer.explained_rows_at(spec, &shared.load()); // warm the caches
        let seed = std::cell::Cell::new(0xD0_0000u64);
        let ingest_once = |shared: &SharedEngine| {
            seed.set(seed.get() + 1);
            let s = seed.get();
            shared.ingest(|db_side| {
                FakeLog::inject(db_side, t_log, cols, &users, &patients, append, days, s);
            });
        };

        let publish_workload = |name: String, shared: &SharedEngine| -> Workload {
            // Baseline: flat-storage publication copy of the current epoch.
            let mut sink_v: Vec<Value> = Vec::new();
            let mut sink_u: Vec<u32> = Vec::new();
            let baseline = eba_bench::harness::measure(samples, || {
                let epoch = shared.load();
                sink_v.clear();
                sink_u.clear();
                for tid in epoch.db().table_ids() {
                    for (_, row) in epoch.db().table(tid).iter() {
                        sink_v.extend_from_slice(row);
                    }
                    for col in &epoch.engine().snapshot().table(tid).cols {
                        sink_u.extend(col.iter().copied());
                    }
                }
                std::hint::black_box(sink_v.len() + sink_u.len());
            });
            // Engine: the real segmented publication of one batch.
            let engine_side = eba_bench::harness::measure(samples, || ingest_once(shared));
            // Copy-meter evidence for one more publication.
            eba_relational::segment::reset_copied_bytes();
            ingest_once(shared);
            let seg_bytes = eba_relational::segment::copied_bytes();
            let epoch = shared.load();
            let mut flat_bytes = 0u64;
            let mut log_rows = 0usize;
            for tid in epoch.db().table_ids() {
                let t = epoch.db().table(tid);
                if tid == t_log {
                    log_rows = t.len();
                }
                flat_bytes +=
                    (t.len() * t.schema().arity()) as u64 * std::mem::size_of::<Value>() as u64;
                let it = epoch.engine().snapshot().table(tid);
                flat_bytes += (it.n_rows * it.cols.len()) as u64 * 4;
            }
            Workload {
                name,
                baseline,
                engine: engine_side,
                samples,
                note: Some(format!(
                    "bytes copied per published epoch: segmented {} vs flat {} \
                     ({:.1}x fewer; {} log rows, batch {})",
                    seg_bytes,
                    flat_bytes,
                    flat_bytes as f64 / (seg_bytes.max(1)) as f64,
                    log_rows,
                    append,
                )),
            }
        };

        workloads.push(publish_workload(
            format!("publish/ingest_epoch_cost{append}"),
            &shared,
        ));
        // Grow the database ~8x (same batch size), then measure again.
        let before = shared.load().db().table(t_log).len();
        while shared.load().db().table(t_log).len() < before * 8 {
            ingest_once(&shared);
        }
        workloads.push(publish_workload(
            format!("publish/ingest_epoch_cost{append}_large"),
            &shared,
        ));
    }

    // Streaming audit: answering `UNEXPLAINED` after an ingest with the
    // *maintained* partition (advanced inside ingest by delta
    // evaluation, read back in O(1)) vs the cold path (re-deriving the
    // unexplained residue from the whole suite at the new epoch). Both
    // sides pay the same publication; the gap is pure O(delta) vs O(log)
    // audit work. The `_large` variant re-runs after growing the log
    // ~8x with the same batch size: the cold side grows with the log,
    // the maintained side does not. Differential guard first: the
    // maintained residue must equal the cold recompute byte for byte.
    {
        let pinned = SharedEngine::new(db.clone());
        let pin = pinned.pin_suite(explainer.suite_pin(spec));
        let unpinned = SharedEngine::new(db.clone());
        let seed = std::cell::Cell::new(0x57_0000u64);
        let ingest_once = |engine: &SharedEngine| {
            seed.set(seed.get() + 1);
            let s = seed.get();
            engine.ingest(|db_side| {
                FakeLog::inject(db_side, t_log, cols, &users, &patients, append, days, s);
            });
        };

        let guard = |tag: &str| {
            let epoch = pinned.load();
            let m = epoch
                .maintained(pin)
                .expect("pinned suite publishes its partition");
            assert_eq!(
                m.unexplained.to_vec(),
                explainer.unexplained_rows_at(spec, &epoch),
                "maintained residue diverged from the cold recompute ({tag})"
            );
            assert_eq!(
                m.log_len,
                epoch.db().table(t_log).len(),
                "maintained partition covers the whole log ({tag})"
            );
        };

        let stream_workload = |name: String| -> Workload {
            ingest_once(&pinned);
            guard(&name);
            let w = Workload::compare(
                name.clone(),
                samples,
                || {
                    ingest_once(&unpinned);
                    let epoch = unpinned.load();
                    std::hint::black_box(explainer.unexplained_rows_at(spec, &epoch).len());
                },
                || {
                    ingest_once(&pinned);
                    let epoch = pinned.load();
                    let m = epoch.maintained(pin).expect("pinned");
                    std::hint::black_box(m.unexplained.len() + m.anchors.len());
                },
            );
            guard(&name);
            let log_rows = pinned.load().db().table(t_log).len();
            Workload {
                note: Some(format!(
                    "ingest {append} rows then answer UNEXPLAINED: maintained \
                     O(delta) advance + O(1) read vs cold suite recompute at \
                     {log_rows} log rows (residue equality asserted before \
                     and after timing)",
                )),
                ..w
            }
        };

        workloads.push(stream_workload(format!("stream/ingest_delta{append}")));
        let before = pinned.load().db().table(t_log).len();
        while pinned.load().db().table(t_log).len() < before * 8 {
            ingest_once(&pinned);
            ingest_once(&unpinned);
        }
        guard("after growth");
        workloads.push(stream_workload(format!(
            "stream/ingest_delta{append}_large"
        )));
    }

    // Cold start after a crash: a durable store's recovered batches can
    // be replayed through the normal publication path (one epoch per
    // batch — clone, fork, refresh, publish, once per batch in the
    // history) or bulk-loaded into the base database with a single engine
    // build at the end, which is what `AuditService::new_durable` does on
    // boot. Both sides end at the same epoch; the differential guard
    // asserts identical explained sets before timing.
    {
        use eba_relational::pile::{default_checkpoint_rows, plain_batch, replay_into};
        use eba_relational::{Durability, DurableStore, SharedMem};

        let n_batches = 8usize;
        let pile_mem = SharedMem::new();
        let wal_mem = SharedMem::new();
        {
            let (mut store, _, _) = DurableStore::open_on(
                Box::new(pile_mem.clone()),
                Box::new(wal_mem.clone()),
                "bench",
                Durability::Relaxed,
                default_checkpoint_rows(),
            )
            .expect("fresh in-memory store");
            let shared = SharedEngine::new(db.clone());
            for b in 0..n_batches {
                shared
                    .ingest_with(
                        |d| {
                            let first = d.table(t_log).len() as u64;
                            FakeLog::inject(
                                d,
                                t_log,
                                cols,
                                &users,
                                &patients,
                                append,
                                days,
                                0xE0_3000 + b as u64,
                            );
                            first
                        },
                        |d, &first, seq| {
                            let t = d.table(t_log);
                            let rows: Vec<Vec<Value>> = (first..t.len() as u64)
                                .map(|r| t.row(r as u32).to_vec())
                                .collect();
                            let name = t.schema().name.clone();
                            store.append(plain_batch(d, seq, &name, first, &rows))
                        },
                    )
                    .expect("in-memory media never fails");
            }
        }
        let (_, batches, report) = DurableStore::open_on(
            Box::new(pile_mem.clone()),
            Box::new(wal_mem.clone()),
            "bench-recover",
            Durability::Relaxed,
            default_checkpoint_rows(),
        )
        .expect("recovery of a cleanly written store");
        assert_eq!(report.batches(), n_batches, "{}", report.summary());

        let bulk_db = {
            let mut d = db.clone();
            replay_into(&mut d, &batches).expect("bulk replay");
            d
        };
        {
            let shared = SharedEngine::new(db.clone());
            for b in &batches {
                shared.ingest(|d| {
                    replay_into(d, std::slice::from_ref(b)).expect("per-batch replay");
                });
            }
            let cold = Engine::new(&bulk_db);
            assert_eq!(
                explainer.explained_rows_at(spec, &shared.load()),
                explainer.explained_rows_with(&bulk_db, spec, &cold),
                "replay strategies diverged"
            );
        }
        workloads.push(Workload::compare(
            format!("cold_start/recovery_replay{}x{append}", n_batches),
            samples,
            || {
                let shared = SharedEngine::new(db.clone());
                for b in &batches {
                    shared.ingest(|d| {
                        replay_into(d, std::slice::from_ref(b)).expect("per-batch replay");
                    });
                }
                std::hint::black_box(shared.seq());
            },
            || {
                let mut d = db.clone();
                replay_into(&mut d, &batches).expect("bulk replay");
                let engine = Engine::new(&d);
                std::hint::black_box(engine.snapshot().table(t_log).n_rows);
            },
        ));
    }

    // Concurrent handoff: reader sessions ask the suite question at the
    // exact moment an ingest+refresh cycle is in flight. The baseline
    // serializes everything behind one mutex (the coupling `&mut Engine`
    // forces on a service), so the reader's answer waits out the whole
    // ingest+refresh; with the `SharedEngine` epoch handoff the reader
    // answers from its pinned epoch and is never blocked by the writer.
    // The recorded duration is the per-cycle worst reader latency
    // (median over cycles) — the tail a service's SLO is made of.
    {
        let params = ConcurrentParams {
            spec,
            cols,
            days,
            t_log,
            users: &users,
            patients: &patients,
            // The stress case is a bulk batch (a day's feed, not a
            // trickle) landing while auditors work — 10x the incremental
            // refresh workload's batch.
            append: append * 10,
            // One reader session per spare core (the writer gets the
            // other): a single-core box still shows the blocking gap —
            // the locked reader *waits out* the refresh, the epoch
            // reader merely time-shares with it.
            readers: threads.saturating_sub(1).clamp(1, 4),
            cycles: samples.max(3),
        };
        // Differential guard: an epoch answers exactly like the per-query
        // path before we time anything.
        {
            let shared = SharedEngine::new(db.clone());
            let epoch = shared.load();
            assert_eq!(
                explainer.explained_rows_at(spec, &epoch),
                explainer.explained_rows(db, spec),
                "epoch changed the explained set"
            );
        }
        let baseline = reader_during_ingest_locked(db, &explainer, &params);
        let engine_side = reader_during_ingest_shared(db, &explainer, &params);
        workloads.push(Workload {
            name: format!("concurrent/reader_during_ingest{}", params.append),
            baseline: baseline.worst_reader,
            engine: engine_side.worst_reader,
            samples: params.cycles,
            note: Some(format!(
                "reader answered before the in-flight ingest finished in \
                 {}/{} cycles with the epoch handoff vs {}/{} under the \
                 coarse lock ({} reader(s))",
                engine_side.overlapped,
                params.cycles,
                baseline.overlapped,
                params.cycles,
                params.readers
            )),
        });

        // The served variant: same duel, but the epoch-handoff side runs
        // against a live `eba-serve` over TCP. The coarse-locked baseline
        // pays no socket cost, so any speedup is real handoff win.
        let served = reader_during_ingest_server(db, &explainer, &params);
        workloads.push(Workload {
            name: format!("server/reader_during_ingest{}", params.append),
            baseline: baseline.worst_reader,
            engine: served.result.worst_reader,
            samples: params.cycles,
            note: Some(format!(
                "eba-serve over TCP ({} persistent reader session(s), REPIN+METRICS \
                 per question, writer INGESTs {} rows/cycle): reader latency \
                 p50 {:.3} ms / p95 {:.3} ms / max {:.3} ms over {} questions; \
                 overlapped {}/{} cycles vs {}/{} for the socket-free coarse lock",
                params.readers,
                params.append,
                served.p50.as_secs_f64() * 1e3,
                served.p95.as_secs_f64() * 1e3,
                served.max.as_secs_f64() * 1e3,
                served.questions,
                served.result.overlapped,
                params.cycles,
                baseline.overlapped,
                params.cycles,
            )),
        });

        // Admission control under a connection storm: the same pinned
        // reader question, once against an uncapped server absorbing the
        // whole storm, once against a capped one shedding most of it
        // with `ERR busy`. Baseline = uncapped, engine = capped; the gap
        // is what the cap buys the reader's tail.
        let questions = (samples.max(3)) * 12;
        let uncapped = overload_storm_server(db, &explainer, &params, 0, questions);
        let capped = overload_storm_server(db, &explainer, &params, STORM_CAP, questions);
        workloads.push(Workload {
            name: "server/overload_storm".into(),
            baseline: uncapped.p50,
            engine: capped.p50,
            samples: questions,
            note: Some(format!(
                "{STORM_CONNECTORS} connectors storming while one pinned reader asks \
                 METRICS {questions}x: uncapped p50 {:.3} ms / p95 {:.3} ms \
                 ({} storm requests served, 0 shed) vs --max-conn {STORM_CAP} \
                 p50 {:.3} ms / p95 {:.3} ms ({} served, {} shed with ERR busy)",
                uncapped.p50.as_secs_f64() * 1e3,
                uncapped.p95.as_secs_f64() * 1e3,
                uncapped.served,
                capped.p50.as_secs_f64() * 1e3,
                capped.p95.as_secs_f64() * 1e3,
                capped.served,
                capped.shed,
            )),
        });
    }

    print_workloads(&workloads);

    if let Some(path) = json_path {
        write_bench_json(&path, "audit-bench", &scale, threads, &workloads).expect("write json");
        eprintln!("# wrote {path}");
    }
}

/// Shape of the concurrent-handoff measurement.
struct ConcurrentParams<'a> {
    spec: &'a LogSpec,
    cols: &'a LogColumns,
    days: u32,
    t_log: eba_relational::TableId,
    users: &'a [Value],
    patients: &'a [Value],
    append: usize,
    readers: usize,
    cycles: usize,
}

/// Runs `cycles` rounds: each round, every reader thread and the writer
/// rendezvous at a start barrier that the writer only reaches once its
/// ingest is committed to being in flight (lock held / about to publish);
/// the readers then each time one full suite question. A second
/// rendezvous closes the round — the writer cannot start the next ingest
/// (and, on the locked side, re-grab the service lock) until every reader
/// got its answer. Returns the median over cycles of the per-cycle worst
/// reader latency.
fn drive_concurrent(
    p: &ConcurrentParams,
    read: impl Fn() + Sync,
    mut write_batch: impl FnMut(u64, &std::sync::Barrier) -> Duration,
) -> ConcurrentResult {
    let barrier = std::sync::Barrier::new(p.readers + 1);
    let per_cycle_worst = Mutex::new(vec![Duration::ZERO; p.cycles]);
    let mut ingest_work = vec![Duration::ZERO; p.cycles];
    std::thread::scope(|scope| {
        for _ in 0..p.readers {
            scope.spawn(|| {
                for cycle in 0..p.cycles {
                    barrier.wait(); // start: the ingest is in flight
                    let start = Instant::now();
                    read();
                    let elapsed = start.elapsed();
                    {
                        let mut worst = per_cycle_worst.lock().unwrap();
                        worst[cycle] = worst[cycle].max(elapsed);
                    }
                    barrier.wait(); // end of round
                }
            });
        }
        for (i, work) in ingest_work.iter_mut().enumerate() {
            // `write_batch` hits the start barrier itself (with its lock
            // already held where applicable), returns how long its
            // ingest+refresh work took from that instant, and drops every
            // guard before returning; the end-of-round barrier is here.
            *work = write_batch(i as u64, &barrier);
            barrier.wait(); // end of round
        }
    });
    let worst = per_cycle_worst.into_inner().unwrap();
    // A cycle "overlapped" when the slowest reader had its answer before
    // the in-flight ingest+refresh finished — the thing a coarse lock
    // makes impossible by construction.
    let overlapped = worst
        .iter()
        .zip(&ingest_work)
        .filter(|(r, w)| r < w)
        .count();
    ConcurrentResult {
        worst_reader: eba_bench::harness::median(&worst),
        overlapped,
    }
}

/// What one side of the concurrent workload observed.
struct ConcurrentResult {
    /// Median over cycles of the per-cycle worst reader latency.
    worst_reader: Duration,
    /// Cycles in which every reader answered before the ingest finished.
    overlapped: usize,
}

/// Reader-during-ingest latency under the coarse-locked service: one
/// mutex over `(Database, Engine)`, which is what
/// `Engine::refresh(&mut self)` forces — the writer takes the lock
/// *before* releasing the readers, so every timed query waits out the
/// whole ingest+refresh (and every other reader).
fn reader_during_ingest_locked(
    db: &Database,
    explainer: &Explainer,
    p: &ConcurrentParams,
) -> ConcurrentResult {
    let svc = Mutex::new((db.clone(), Engine::new(db)));
    {
        let g = svc.lock().unwrap();
        explainer.explained_rows_with(&g.0, p.spec, &g.1); // warm the caches
    }
    drive_concurrent(
        p,
        || {
            let g = svc.lock().unwrap();
            explainer.explained_rows_with(&g.0, p.spec, &g.1);
        },
        |seed, barrier| {
            let mut g = svc.lock().unwrap();
            barrier.wait(); // readers start now, while the lock is held
            let start = Instant::now();
            let (db_side, engine_side) = &mut *g;
            FakeLog::inject(
                db_side,
                p.t_log,
                p.cols,
                p.users,
                p.patients,
                p.append,
                p.days,
                0xC0_1000 + seed,
            );
            engine_side
                .refresh(db_side)
                .expect("append-only refresh succeeds");
            start.elapsed()
        },
    )
}

/// Reader-during-ingest latency under the epoch handoff: the writer
/// ingests into a private successor and publishes with a pointer swap;
/// the readers pin whatever epoch is current and answer immediately.
fn reader_during_ingest_shared(
    db: &Database,
    explainer: &Explainer,
    p: &ConcurrentParams,
) -> ConcurrentResult {
    let shared = SharedEngine::new(db.clone());
    explainer.explained_rows_at(p.spec, &shared.load()); // warm the caches
    drive_concurrent(
        p,
        || {
            let epoch = shared.load();
            explainer.explained_rows_at(p.spec, &epoch);
        },
        |seed, barrier| {
            barrier.wait(); // readers start now; the ingest runs beside them
            let start = Instant::now();
            shared.ingest(|db_side| {
                FakeLog::inject(
                    db_side,
                    p.t_log,
                    p.cols,
                    p.users,
                    p.patients,
                    p.append,
                    p.days,
                    0xC0_2000 + seed,
                );
            });
            start.elapsed()
        },
    )
}

/// What the served handoff measured: the per-cycle result plus the
/// latency distribution across every socket question.
struct ServedResult {
    result: ConcurrentResult,
    p50: Duration,
    p95: Duration,
    max: Duration,
    questions: usize,
}

/// Reader-during-ingest latency against a live `eba-serve`: persistent
/// reader sessions each issue `REPIN` + `METRICS` per cycle while a
/// writer connection pushes an `INGEST` batch through the single-writer
/// path; the same barrier choreography as [`drive_concurrent`], with one
/// socket client per thread.
fn reader_during_ingest_server(
    db: &Database,
    explainer: &Explainer,
    p: &ConcurrentParams,
) -> ServedResult {
    use eba_server::{AuditService, Client, IngestRow, Server};

    let service = AuditService::new(
        db.clone(),
        p.spec.clone(),
        *p.cols,
        explainer.clone(),
        p.days,
    );
    let server = Server::spawn(service, "127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr();
    // Warm the epoch's caches the way a live session would have.
    {
        let mut warm = Client::connect(addr).expect("warm session");
        warm.send("METRICS").expect("warm question");
    }
    let as_int = |v: &Value| match v {
        Value::Int(i) => *i,
        _ => 0,
    };
    let rows: Vec<IngestRow> = (0..p.append)
        .map(|i| IngestRow {
            user: as_int(&p.users[i % p.users.len()]),
            patient: as_int(&p.patients[(i * 13) % p.patients.len()]),
            day: Some(1 + (i % p.days.max(1) as usize) as i64),
        })
        .collect();

    let barrier = std::sync::Barrier::new(p.readers + 1);
    let per_cycle_worst = Mutex::new(vec![Duration::ZERO; p.cycles]);
    let all_latencies = Mutex::new(Vec::with_capacity(p.readers * p.cycles));
    let mut ingest_work = vec![Duration::ZERO; p.cycles];
    std::thread::scope(|scope| {
        for _ in 0..p.readers {
            scope.spawn(|| {
                let mut session = Client::connect(addr).expect("reader session");
                for cycle in 0..p.cycles {
                    barrier.wait(); // start: the ingest is about to be in flight
                    let start = Instant::now();
                    session.send("REPIN").expect("repin");
                    session.send("METRICS").expect("metrics");
                    let elapsed = start.elapsed();
                    {
                        let mut worst = per_cycle_worst.lock().unwrap();
                        worst[cycle] = worst[cycle].max(elapsed);
                    }
                    all_latencies.lock().unwrap().push(elapsed);
                    barrier.wait(); // end of round
                }
            });
        }
        let mut writer = Client::connect(addr).expect("writer session");
        for work in ingest_work.iter_mut() {
            barrier.wait(); // readers fire now; the ingest runs beside them
            let start = Instant::now();
            let reply = writer.ingest(&rows).expect("ingest");
            assert!(reply.is_ok(), "{}", reply.head);
            *work = start.elapsed();
            barrier.wait(); // end of round
        }
    });

    let worst = per_cycle_worst.into_inner().unwrap();
    let overlapped = worst
        .iter()
        .zip(&ingest_work)
        .filter(|(r, w)| r < w)
        .count();
    let mut latencies = all_latencies.into_inner().unwrap();
    latencies.sort_unstable();
    let percentile = |q: f64| -> Duration {
        if latencies.is_empty() {
            return Duration::ZERO;
        }
        let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
        latencies[idx]
    };
    ServedResult {
        result: ConcurrentResult {
            worst_reader: eba_bench::harness::median(&worst),
            overlapped,
        },
        p50: percentile(0.50),
        p95: percentile(0.95),
        max: *latencies.last().unwrap_or(&Duration::ZERO),
        questions: latencies.len(),
    }
}

/// Storm shape for `server/overload_storm`: connector threads churning
/// short sessions against the admission cap.
const STORM_CONNECTORS: usize = 16;
const STORM_CAP: usize = 4;

/// One pinned reader's latency distribution under the storm.
struct StormResult {
    p50: Duration,
    p95: Duration,
    /// Storm requests that were admitted and answered.
    served: usize,
    /// Storm connections refused with `ERR busy`.
    shed: usize,
}

/// Runs a connection storm against `eba-serve` with the given admission
/// cap (0 = unlimited) while one pinned session times `questions`
/// `METRICS` answers. Storm connectors churn connect→METRICS→drop in a
/// tight loop; refused connects count as shed and back off briefly, the
/// way a retrying client would.
fn overload_storm_server(
    db: &Database,
    explainer: &Explainer,
    p: &ConcurrentParams,
    cap: usize,
    questions: usize,
) -> StormResult {
    use eba_server::{AuditService, Client, Server, ServerConfig};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    let service = AuditService::new(
        db.clone(),
        p.spec.clone(),
        *p.cols,
        explainer.clone(),
        p.days,
    );
    let config = ServerConfig {
        max_connections: cap,
        ..ServerConfig::default()
    };
    let server = Server::spawn_with(service, "127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr();

    // The pinned reader takes its slot (and warms the epoch) before the
    // storm starts.
    let mut pinned = Client::connect(addr).expect("pinned session");
    pinned.send("METRICS").expect("warm question");

    let stop = AtomicBool::new(false);
    let served = AtomicUsize::new(0);
    let shed = AtomicUsize::new(0);
    let mut latencies = Vec::with_capacity(questions);
    std::thread::scope(|scope| {
        for _ in 0..STORM_CONNECTORS {
            scope.spawn(|| {
                while !stop.load(Ordering::SeqCst) {
                    match Client::connect(addr) {
                        Ok(mut c) => {
                            if c.send("METRICS").is_ok() {
                                served.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                        Err(_) => {
                            // `ERR busy` (or a backlogged connect): the
                            // typed shed path. Back off like a client.
                            shed.fetch_add(1, Ordering::SeqCst);
                            std::thread::sleep(Duration::from_millis(2));
                        }
                    }
                }
            });
        }
        for _ in 0..questions {
            let start = Instant::now();
            pinned.send("METRICS").expect("pinned question");
            latencies.push(start.elapsed());
        }
        stop.store(true, Ordering::SeqCst);
    });

    latencies.sort_unstable();
    let percentile = |q: f64| -> Duration {
        if latencies.is_empty() {
            return Duration::ZERO;
        }
        let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
        latencies[idx]
    };
    StormResult {
        p50: percentile(0.50),
        p95: percentile(0.95),
        served: served.load(Ordering::SeqCst),
        shed: shed.load(Ordering::SeqCst),
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: audit-bench [--json PATH] [--samples N] [--scale tiny|small|default|bench] \
         [--append N] [--shards N]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
