//! Audit-performance tracker: the per-query audit layer vs the shared
//! warm [`Engine`], plus incremental snapshot refresh vs full rebuild.
//!
//! ```text
//! audit-bench [--json PATH] [--samples N] [--scale tiny|small|default|bench] [--append N]
//! ```
//!
//! The paper's operational loop is an auditor repeatedly asking "which
//! accesses does this template suite explain?" over an append-only log.
//! Three workload families measure that loop:
//!
//! * **warm-engine suite evaluation** (`suite/*`, `timeline/daily`,
//!   `portal/misuse`): the audit layer's per-query path (every call
//!   re-scans tables per template) vs one warm engine answering the suite
//!   as a fanned-out batch;
//! * **cold vs warm engine** (`engine/cold_build`): constructing a fresh
//!   engine per question vs holding one across questions;
//! * **incremental append** (`refresh/append*`): `Engine::refresh` after a
//!   batch of log appends vs re-snapshotting the whole database.
//!
//! Every engine-backed result is asserted equal to the per-query result
//! before timing. With `--json` the medians land in `BENCH_audit.json`
//! (same schema as `BENCH_mining.json`, shared via
//! [`eba_bench::harness::write_bench_json`]).

use eba_audit::fake::{user_pool, FakeLog};
use eba_audit::handcrafted::{same_group, EventTable};
use eba_audit::{portal, timeline, Explainer};
use eba_bench::harness::{print_workloads, write_bench_json, Workload};
use eba_bench::{bench_config, scale_config};
use eba_experiments::Scenario;
use eba_relational::{Engine, Value};

fn main() {
    let mut json_path: Option<String> = None;
    let mut samples = 5usize;
    let mut scale = "bench".to_string();
    let mut append = 500usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                json_path = Some(args.next().unwrap_or_else(|| usage("missing --json path")))
            }
            "--samples" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("missing --samples value"));
                samples = v
                    .parse()
                    .unwrap_or_else(|_| usage("--samples expects an integer"));
            }
            "--scale" => {
                scale = args
                    .next()
                    .unwrap_or_else(|| usage("missing --scale value"))
            }
            "--append" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("missing --append value"));
                append = v
                    .parse()
                    .unwrap_or_else(|_| usage("--append expects an integer"));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    let config = if scale == "bench" {
        bench_config()
    } else {
        scale_config(&scale).unwrap_or_else(|| usage(&format!("unknown scale `{scale}`")))
    };

    eprintln!("# generating hospital (scale={scale})...");
    let scenario = Scenario::build(config);
    let spec = &scenario.spec;
    let db = &scenario.hospital.db;
    let days = scenario.hospital.config.days;
    let cols = &scenario.hospital.log_cols;
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "# {} log rows, {} threads, {} samples per measurement",
        scenario.hospital.log_len(),
        threads,
        samples
    );

    // The auditor's suite: every hand-crafted template (including the
    // anchor-dependent repeat-access one, which exercises the engine's
    // row-map-backed per-row path) plus the depth-1 collaborative-group
    // templates.
    let mut templates: Vec<_> = scenario.handcrafted.all().into_iter().cloned().collect();
    for e in EventTable::ALL {
        templates.push(same_group(db, spec, e, Some(1)).expect("Groups installed"));
    }
    let explainer = Explainer::new(templates);

    // One warm engine for the whole session (the scenario's own engine is
    // left untouched so the workloads control their cache state).
    let engine = Engine::new(db);

    // Differential guard: every engine-backed view must equal the
    // per-query view before we time anything.
    assert_eq!(
        explainer.explained_rows_with(db, spec, &engine),
        explainer.explained_rows(db, spec),
        "engine changed the explained set"
    );
    assert_eq!(
        explainer.unexplained_rows_with(db, spec, &engine),
        explainer.unexplained_rows(db, spec),
        "engine changed the unexplained set"
    );
    assert_eq!(
        timeline::daily_stats_with(db, spec, cols, &explainer, days, &engine),
        timeline::daily_stats(db, spec, cols, &explainer, days),
        "engine changed the timeline"
    );
    assert_eq!(
        portal::misuse_summary_with(db, spec, &explainer, &engine),
        portal::misuse_summary(db, spec, &explainer),
        "engine changed the misuse summary"
    );

    let mut workloads: Vec<Workload> = Vec::new();
    workloads.push(Workload::compare(
        "suite/explained",
        samples,
        || {
            explainer.explained_rows(db, spec);
        },
        || {
            explainer.explained_rows_with(db, spec, &engine);
        },
    ));
    workloads.push(Workload::compare(
        "suite/unexplained",
        samples,
        || {
            explainer.unexplained_rows(db, spec);
        },
        || {
            explainer.unexplained_rows_with(db, spec, &engine);
        },
    ));
    workloads.push(Workload::compare(
        "timeline/daily",
        samples,
        || {
            timeline::daily_stats(db, spec, cols, &explainer, days);
        },
        || {
            timeline::daily_stats_with(db, spec, cols, &explainer, days, &engine);
        },
    ));
    workloads.push(Workload::compare(
        "portal/misuse",
        samples,
        || {
            portal::misuse_summary(db, spec, &explainer);
        },
        || {
            portal::misuse_summary_with(db, spec, &explainer, &engine);
        },
    ));
    // Cold engine per question vs one warm engine across questions.
    workloads.push(Workload::compare(
        "engine/cold_build",
        samples,
        || {
            let cold = Engine::new(db);
            explainer.explained_rows_with(db, spec, &cold);
        },
        || {
            explainer.explained_rows_with(db, spec, &engine);
        },
    ));

    // Incremental append: after each batch of `append` fresh log rows, an
    // engine is brought up to date — by full re-snapshot (baseline) vs
    // `Engine::refresh` (engine). The appends themselves are *outside* the
    // timed region (ingest happens either way); both sides grow their own
    // database clone at the same rate so the comparison stays balanced
    // across samples.
    {
        let users = user_pool(db);
        let patients: Vec<Value> = (0..scenario.hospital.world.n_patients())
            .map(|p| scenario.hospital.patient_value(p))
            .collect();
        let t_log = scenario.hospital.t_log;
        let timed_appends = |side: &mut dyn FnMut(&mut eba_relational::Database),
                             db_side: &mut eba_relational::Database,
                             seed0: u64|
         -> std::time::Duration {
            // One warm-up round, then `samples` timed rounds (matching
            // `measure`'s shape), each preceded by an untimed append batch.
            let mut durations = Vec::with_capacity(samples);
            for i in 0..=samples {
                FakeLog::inject(
                    db_side,
                    t_log,
                    cols,
                    &users,
                    &patients,
                    append,
                    days,
                    seed0 + i as u64,
                );
                let start = std::time::Instant::now();
                side(db_side);
                let elapsed = start.elapsed();
                if i > 0 {
                    durations.push(elapsed);
                }
            }
            eba_bench::harness::median(&durations)
        };

        let mut db_rebuild = db.clone();
        let baseline = timed_appends(
            &mut |d| {
                Engine::new(d);
            },
            &mut db_rebuild,
            0xA0D17,
        );

        let mut db_refresh = db.clone();
        let mut warm = Engine::new(&db_refresh);
        // Warm the caches the way a live session would have.
        explainer.explained_rows_with(&db_refresh, spec, &warm);
        let engine_side = timed_appends(
            &mut |d| {
                warm.refresh(d);
            },
            &mut db_refresh,
            0xB0D17,
        );
        workloads.push(Workload {
            name: format!("refresh/append{append}"),
            baseline,
            engine: engine_side,
            samples,
        });

        // The refreshed engine must agree with a fresh snapshot of the
        // grown database.
        let fresh = Engine::new(&db_refresh);
        assert_eq!(
            explainer.explained_rows_with(&db_refresh, spec, &warm),
            explainer.explained_rows_with(&db_refresh, spec, &fresh),
            "refresh diverged from a fresh snapshot"
        );
        assert_eq!(
            explainer.explained_rows_with(&db_refresh, spec, &warm),
            explainer.explained_rows(&db_refresh, spec),
            "refresh diverged from the per-query path"
        );
    }

    print_workloads(&workloads);

    if let Some(path) = json_path {
        write_bench_json(&path, "audit-bench", &scale, threads, &workloads).expect("write json");
        eprintln!("# wrote {path}");
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: audit-bench [--json PATH] [--samples N] [--scale tiny|small|default|bench] [--append N]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
