//! Mining-performance tracker: old per-query path vs. the interned/cached/
//! parallel engine, with machine-readable output.
//!
//! ```text
//! mining-bench [--json PATH] [--samples N] [--scale tiny|small|default|bench]
//! ```
//!
//! Runs the shared-step mining workloads (bottom-up one-way/two-way rounds
//! and decoration refinement) twice each — `opt_engine: false` (every
//! candidate re-scans its tables through `ChainQuery::support`, the
//! pre-engine behaviour) and `opt_engine: true` (shared step-map cache +
//! parallel batches) — asserts both mine the **same template set**, and
//! reports criterion-style medians. With `--json` the medians land in a
//! `BENCH_mining.json`-shaped file so the perf trajectory is diffable
//! across PRs.

use eba_bench::harness::{format_duration, median};
use eba_bench::{bench_config, scale_config};
use eba_core::mining::DecorationCandidate;
use eba_core::{mine_one_way, mine_two_way, MiningConfig};
use eba_experiments::Scenario;
use std::time::{Duration, Instant};

struct Workload {
    name: String,
    baseline: Duration,
    engine: Duration,
}

impl Workload {
    fn speedup(&self) -> f64 {
        self.baseline.as_secs_f64() / self.engine.as_secs_f64().max(1e-12)
    }
}

fn measure(samples: usize, mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    let durations: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    median(&durations)
}

fn main() {
    let mut json_path: Option<String> = None;
    let mut samples = 5usize;
    let mut scale = "bench".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                json_path = Some(args.next().unwrap_or_else(|| usage("missing --json path")))
            }
            "--samples" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("missing --samples value"));
                samples = v
                    .parse()
                    .unwrap_or_else(|_| usage("--samples expects an integer"));
            }
            "--scale" => {
                scale = args
                    .next()
                    .unwrap_or_else(|| usage("missing --scale value"))
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    let config = if scale == "bench" {
        bench_config()
    } else {
        scale_config(&scale).unwrap_or_else(|| usage(&format!("unknown scale `{scale}`")))
    };

    eprintln!("# generating hospital (scale={scale})...");
    let scenario = Scenario::build(config);
    let spec = scenario.train_spec();
    let db = &scenario.hospital.db;
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "# {} log rows, {} threads, {} samples per measurement",
        scenario.hospital.log_len(),
        threads,
        samples
    );

    let mut workloads: Vec<Workload> = Vec::new();
    let mining = |max_length: usize, opt_engine: bool| MiningConfig {
        support_frac: 0.01,
        max_length,
        max_tables: 3,
        opt_engine,
        ..MiningConfig::default()
    };

    for max_length in [3usize, 4] {
        let on = mining(max_length, true);
        let off = mining(max_length, false);
        let mined_on = mine_one_way(db, &spec, &on);
        let mined_off = mine_one_way(db, &spec, &off);
        assert_eq!(
            mined_on.key_set(),
            mined_off.key_set(),
            "engine changed the one-way template set at length {max_length}"
        );
        workloads.push(Workload {
            name: format!("one_way/len{max_length}"),
            baseline: measure(samples, || {
                mine_one_way(db, &spec, &off);
            }),
            engine: measure(samples, || {
                mine_one_way(db, &spec, &on);
            }),
        });
    }

    {
        let on = mining(3, true);
        let off = mining(3, false);
        assert_eq!(
            mine_two_way(db, &spec, &on).key_set(),
            mine_two_way(db, &spec, &off).key_set(),
            "engine changed the two-way template set"
        );
        workloads.push(Workload {
            name: "two_way/len3".to_string(),
            baseline: measure(samples, || {
                mine_two_way(db, &spec, &off);
            }),
            engine: measure(samples, || {
                mine_two_way(db, &spec, &on);
            }),
        });
    }

    // Decoration refinement over the mined set (constant-decorated chains).
    {
        let on = mining(4, true);
        let off = mining(4, false);
        let mined = mine_one_way(db, &spec, &on);
        if let Ok(candidate) = DecorationCandidate::group_depths(db, 3) {
            let threshold = mined.threshold;
            workloads.push(Workload {
                name: "refine/groups".to_string(),
                baseline: measure(samples, || {
                    eba_core::mining::refine(
                        db,
                        &spec,
                        &mined.templates,
                        &candidate,
                        threshold,
                        &off,
                    );
                }),
                engine: measure(samples, || {
                    eba_core::mining::refine(
                        db,
                        &spec,
                        &mined.templates,
                        &candidate,
                        threshold,
                        &on,
                    );
                }),
            });
        }
    }

    println!(
        "{:<16} {:>14} {:>14} {:>9}",
        "workload", "baseline", "engine", "speedup"
    );
    for w in &workloads {
        println!(
            "{:<16} {:>14} {:>14} {:>8.2}x",
            w.name,
            format_duration(w.baseline),
            format_duration(w.engine),
            w.speedup()
        );
    }
    let geomean =
        (workloads.iter().map(|w| w.speedup().ln()).sum::<f64>() / workloads.len() as f64).exp();
    println!("geomean speedup: {geomean:.2}x");

    if let Some(path) = json_path {
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"generated_by\": \"mining-bench\",\n");
        json.push_str(&format!("  \"scale\": \"{scale}\",\n"));
        json.push_str(&format!("  \"samples\": {samples},\n"));
        json.push_str(&format!("  \"threads\": {threads},\n"));
        json.push_str("  \"workloads\": [\n");
        for (i, w) in workloads.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"name\": \"{}\", \"baseline_median_ms\": {:.3}, \"engine_median_ms\": {:.3}, \"speedup\": {:.2}}}{}\n",
                w.name,
                w.baseline.as_secs_f64() * 1e3,
                w.engine.as_secs_f64() * 1e3,
                w.speedup(),
                if i + 1 < workloads.len() { "," } else { "" }
            ));
        }
        json.push_str("  ],\n");
        json.push_str(&format!("  \"geomean_speedup\": {geomean:.2}\n"));
        json.push_str("}\n");
        std::fs::write(&path, json).expect("write json");
        eprintln!("# wrote {path}");
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: mining-bench [--json PATH] [--samples N] [--scale tiny|small|default|bench]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
