//! Mining-performance tracker: old per-query path vs. the interned/cached/
//! parallel engine, with machine-readable output.
//!
//! ```text
//! mining-bench [--json PATH] [--samples N] [--scale tiny|small|default|bench]
//! ```
//!
//! Runs the shared-step mining workloads (bottom-up one-way/two-way rounds
//! and decoration refinement) twice each — `opt_engine: false` (every
//! candidate re-scans its tables through `ChainQuery::support`, the
//! pre-engine behaviour) and `opt_engine: true` (shared step-map cache +
//! parallel batches) — asserts both mine the **same template set**, and
//! reports criterion-style medians. With `--json` the medians land in a
//! `BENCH_mining.json`-shaped file (same schema as `audit-bench`'s
//! `BENCH_audit.json`, see [`eba_bench::harness::write_bench_json`]) so
//! the perf trajectory is diffable across PRs.

use eba_bench::harness::{print_workloads, write_bench_json, Workload};
use eba_bench::{bench_config, scale_config};
use eba_core::mining::DecorationCandidate;
use eba_core::{mine_one_way, mine_two_way, MiningConfig};
use eba_experiments::Scenario;

fn main() {
    let mut json_path: Option<String> = None;
    let mut samples = 5usize;
    let mut scale = "bench".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                json_path = Some(args.next().unwrap_or_else(|| usage("missing --json path")))
            }
            "--samples" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("missing --samples value"));
                samples = v
                    .parse()
                    .unwrap_or_else(|_| usage("--samples expects an integer"));
            }
            "--scale" => {
                scale = args
                    .next()
                    .unwrap_or_else(|| usage("missing --scale value"))
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    let config = if scale == "bench" {
        bench_config()
    } else {
        scale_config(&scale).unwrap_or_else(|| usage(&format!("unknown scale `{scale}`")))
    };

    eprintln!("# generating hospital (scale={scale})...");
    let scenario = Scenario::build(config);
    let spec = scenario.train_spec();
    let db = &scenario.hospital.db;
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "# {} log rows, {} threads, {} samples per measurement",
        scenario.hospital.log_len(),
        threads,
        samples
    );

    let mut workloads: Vec<Workload> = Vec::new();
    let mining = |max_length: usize, opt_engine: bool| MiningConfig {
        support_frac: 0.01,
        max_length,
        max_tables: 3,
        opt_engine,
        ..MiningConfig::default()
    };

    for max_length in [3usize, 4] {
        let on = mining(max_length, true);
        let off = mining(max_length, false);
        let mined_on = mine_one_way(db, &spec, &on);
        let mined_off = mine_one_way(db, &spec, &off);
        assert_eq!(
            mined_on.key_set(),
            mined_off.key_set(),
            "engine changed the one-way template set at length {max_length}"
        );
        workloads.push(Workload::compare(
            format!("one_way/len{max_length}"),
            samples,
            || {
                mine_one_way(db, &spec, &off);
            },
            || {
                mine_one_way(db, &spec, &on);
            },
        ));
    }

    {
        let on = mining(3, true);
        let off = mining(3, false);
        assert_eq!(
            mine_two_way(db, &spec, &on).key_set(),
            mine_two_way(db, &spec, &off).key_set(),
            "engine changed the two-way template set"
        );
        workloads.push(Workload::compare(
            "two_way/len3",
            samples,
            || {
                mine_two_way(db, &spec, &off);
            },
            || {
                mine_two_way(db, &spec, &on);
            },
        ));
    }

    // The bridging algorithm, whose gluing phases batch through the shared
    // engine like the bottom-up rounds.
    {
        let on = mining(4, true);
        let off = mining(4, false);
        let bridged_on = eba_core::mine_bridge(db, &spec, &on, 2).expect("Bridge-2 covers len 4");
        let bridged_off = eba_core::mine_bridge(db, &spec, &off, 2).expect("Bridge-2 covers len 4");
        assert_eq!(
            bridged_on.key_set(),
            bridged_off.key_set(),
            "engine changed the bridged template set"
        );
        workloads.push(Workload::compare(
            "bridge2/len4",
            samples,
            || {
                eba_core::mine_bridge(db, &spec, &off, 2).unwrap();
            },
            || {
                eba_core::mine_bridge(db, &spec, &on, 2).unwrap();
            },
        ));
    }

    // Decoration refinement over the mined set (constant-decorated chains).
    {
        let on = mining(4, true);
        let off = mining(4, false);
        let mined = mine_one_way(db, &spec, &on);
        if let Ok(candidate) = DecorationCandidate::group_depths(db, 3) {
            let threshold = mined.threshold;
            workloads.push(Workload::compare(
                "refine/groups",
                samples,
                || {
                    eba_core::mining::refine(
                        db,
                        &spec,
                        &mined.templates,
                        &candidate,
                        threshold,
                        &off,
                    );
                },
                || {
                    eba_core::mining::refine(
                        db,
                        &spec,
                        &mined.templates,
                        &candidate,
                        threshold,
                        &on,
                    );
                },
            ));
        }
    }

    print_workloads(&workloads);

    if let Some(path) = json_path {
        write_bench_json(&path, "mining-bench", &scale, threads, &workloads).expect("write json");
        eprintln!("# wrote {path}");
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: mining-bench [--json PATH] [--samples N] [--scale tiny|small|default|bench]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
