//! Regenerates every table and figure of the paper's evaluation (§5).
//!
//! ```text
//! reproduce [--scale tiny|small|default] [--seed N] [--csv DIR] [ARTIFACT...]
//! ```
//!
//! With no `ARTIFACT` arguments all experiments run in paper order.
//! Artifacts: `overview fig6 fig7 fig8 fig9 fig10 fig12 fig13 fig14 table1`.

use eba_bench::scale_config;
use eba_experiments::{
    fig_events, fig_groups, fig_handcrafted, fig_mining, fig_predictive, overview, FigureResult,
    Scenario,
};
use eba_synth::SynthConfig;
use std::io::Write;

fn main() {
    let mut scale = "default".to_string();
    let mut seed: Option<u64> = None;
    let mut csv_dir: Option<String> = None;
    let mut artifacts: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .unwrap_or_else(|| usage("missing --scale value"))
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage("missing --seed value"));
                seed = Some(
                    v.parse()
                        .unwrap_or_else(|_| usage("--seed expects an integer")),
                );
            }
            "--csv" => csv_dir = Some(args.next().unwrap_or_else(|| usage("missing --csv dir"))),
            "--help" | "-h" => usage(""),
            other => artifacts.push(other.to_string()),
        }
    }

    let mut config: SynthConfig =
        scale_config(&scale).unwrap_or_else(|| usage(&format!("unknown scale `{scale}`")));
    if let Some(s) = seed {
        config.seed = s;
    }

    eprintln!(
        "# generating hospital (scale={scale}, seed={}, {} patients)...",
        config.seed, config.n_patients
    );
    let started = std::time::Instant::now();
    let scenario = Scenario::build(config);
    eprintln!(
        "# ready: {} accesses, {} users, groups to depth {} ({:.1}s)",
        scenario.hospital.log_len(),
        scenario.hospital.world.n_users(),
        scenario.groups.hierarchy.depth_count() - 1,
        started.elapsed().as_secs_f64()
    );

    let all = artifacts.is_empty();
    let want = |name: &str| all || artifacts.iter().any(|a| a == name);
    let mut results: Vec<FigureResult> = Vec::new();

    if want("overview") {
        results.push(overview::data_overview(&scenario));
    }
    if want("fig6") {
        results.push(fig_events::fig06(&scenario));
    }
    if want("fig7") {
        results.push(fig_handcrafted::fig07(&scenario));
    }
    if want("fig8") {
        results.push(fig_events::fig08(&scenario));
    }
    if want("fig9") {
        results.push(fig_handcrafted::fig09(&scenario));
    }
    if want("fig10") || want("fig11") {
        results.extend(fig_groups::fig10_11(&scenario));
    }
    if want("fig12") {
        results.push(fig_groups::fig12(&scenario));
    }
    if want("fig13") {
        results.push(fig_mining::fig13(&scenario));
    }
    if want("fig14") {
        results.push(fig_predictive::fig14(&scenario));
    }
    if want("table1") {
        results.push(fig_mining::table1(&scenario));
    }
    if want("ext") {
        results.push(eba_experiments::ext_decorated::ext_decorated(&scenario));
    }
    if artifacts.iter().any(|a| a == "scaling") {
        let quarter = scenario.hospital.config.n_patients / 4;
        let half = scenario.hospital.config.n_patients / 2;
        let full = scenario.hospital.config.n_patients;
        results.push(eba_experiments::ext_scaling::ext_scaling(&[
            quarter, half, full,
        ]));
    }

    let mut stdout = std::io::stdout().lock();
    for r in &results {
        writeln!(stdout, "{r}").expect("stdout");
    }
    writeln!(
        stdout,
        "# total wall-clock: {:.1}s",
        started.elapsed().as_secs_f64()
    )
    .expect("stdout");

    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(&dir).expect("create csv dir");
        for r in &results {
            let name =
                r.id.to_lowercase()
                    .replace(' ', "_")
                    .replace(['(', ')'], "");
            let path = format!("{dir}/{name}.csv");
            std::fs::write(&path, r.to_csv()).expect("write csv");
            eprintln!("# wrote {path}");
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: reproduce [--scale tiny|small|default] [--seed N] [--csv DIR] [ARTIFACT...]\n\
         artifacts: overview fig6 fig7 fig8 fig9 fig10 fig12 fig13 fig14 table1 ext scaling"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
