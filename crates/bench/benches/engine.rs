//! Relational-substrate microbenchmarks: the support query
//! (`COUNT(DISTINCT Log.Lid)` over a path) through both the per-query row
//! evaluator and the interned/cached engine, batch evaluation, instance
//! enumeration, and the estimator that powers the skip optimization.

use eba_bench::bench_config;
use eba_bench::harness::{criterion_group, criterion_main, Criterion};
use eba_core::{mine_one_way, MiningConfig};
use eba_experiments::Scenario;
use eba_relational::{estimate_support, ChainQuery, Engine, EvalOptions};

fn engine_benches(c: &mut Criterion) {
    let scenario = Scenario::build(bench_config());
    let db = &scenario.hospital.db;
    let spec = &scenario.spec;

    let short = scenario.handcrafted.appt_with_dr.path.to_chain_query(spec);
    let long = eba_audit::handcrafted::same_group(
        db,
        spec,
        eba_audit::handcrafted::EventTable::Appointments,
        Some(1),
    )
    .expect("groups installed")
    .path
    .to_chain_query(spec);
    let repeat = scenario.handcrafted.repeat_access.path.to_chain_query(spec);
    let engine = Engine::new(db);

    // A realistic shared-step candidate batch: the mined template set.
    let mined = mine_one_way(
        db,
        spec,
        &MiningConfig {
            support_frac: 0.01,
            max_length: 4,
            max_tables: 3,
            ..MiningConfig::default()
        },
    );
    let batch: Vec<ChainQuery> = mined
        .templates
        .iter()
        .map(|t| t.path.to_chain_query(spec))
        .collect();

    let mut group = c.benchmark_group("engine");
    group.bench_function("support_len2_appt", |b| {
        b.iter(|| short.support(db, EvalOptions::default()).expect("valid"))
    });
    group.bench_function("support_len2_appt_engine", |b| {
        b.iter(|| {
            engine
                .support(db, &short, EvalOptions::default())
                .expect("valid")
        })
    });
    group.bench_function("support_len4_group", |b| {
        b.iter(|| long.support(db, EvalOptions::default()).expect("valid"))
    });
    group.bench_function("support_len4_group_engine", |b| {
        b.iter(|| {
            engine
                .support(db, &long, EvalOptions::default())
                .expect("valid")
        })
    });
    group.bench_function("support_decorated_repeat", |b| {
        b.iter(|| repeat.support(db, EvalOptions::default()).expect("valid"))
    });
    group.bench_function("support_len2_no_dedup", |b| {
        b.iter(|| {
            short
                .support(db, EvalOptions { dedup: false })
                .expect("valid")
        })
    });
    group.bench_function("support_many_mined_seed", |b| {
        b.iter(|| {
            batch
                .iter()
                .map(|q| q.support(db, EvalOptions::default()).expect("valid"))
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("support_many_mined_engine", |b| {
        b.iter(|| engine.support_many(db, &batch, EvalOptions::default()))
    });
    group.bench_function("engine_cold_snapshot", |b| b.iter(|| Engine::new(db)));
    group.bench_function("estimate_len4_group", |b| {
        b.iter(|| estimate_support(db, &long))
    });
    group.bench_function("instances_one_row", |b| {
        b.iter(|| short.instances(db, 0, 8).expect("valid"))
    });
    group.finish();
}

criterion_group!(benches, engine_benches);
criterion_main!(benches);
