//! Relational-substrate microbenchmarks: the support query
//! (`COUNT(DISTINCT Log.Lid)` over a path), instance enumeration, and the
//! estimator that powers the skip optimization.

use criterion::{criterion_group, criterion_main, Criterion};
use eba_bench::bench_config;
use eba_experiments::Scenario;
use eba_relational::{estimate_support, EvalOptions};

fn engine_benches(c: &mut Criterion) {
    let scenario = Scenario::build(bench_config());
    let db = &scenario.hospital.db;
    let spec = &scenario.spec;

    let short = scenario.handcrafted.appt_with_dr.path.to_chain_query(spec);
    let long = eba_audit::handcrafted::same_group(
        db,
        spec,
        eba_audit::handcrafted::EventTable::Appointments,
        Some(1),
    )
    .expect("groups installed")
    .path
    .to_chain_query(spec);
    let repeat = scenario.handcrafted.repeat_access.path.to_chain_query(spec);

    let mut group = c.benchmark_group("engine");
    group.bench_function("support_len2_appt", |b| {
        b.iter(|| short.support(db, EvalOptions::default()).expect("valid"))
    });
    group.bench_function("support_len4_group", |b| {
        b.iter(|| long.support(db, EvalOptions::default()).expect("valid"))
    });
    group.bench_function("support_decorated_repeat", |b| {
        b.iter(|| repeat.support(db, EvalOptions::default()).expect("valid"))
    });
    group.bench_function("support_len2_no_dedup", |b| {
        b.iter(|| short.support(db, EvalOptions { dedup: false }).expect("valid"))
    });
    group.bench_function("estimate_len4_group", |b| {
        b.iter(|| estimate_support(db, &long))
    });
    group.bench_function("instances_one_row", |b| {
        b.iter(|| short.instances(db, 0, 8).expect("valid"))
    });
    group.finish();
}

criterion_group!(benches, engine_benches);
criterion_main!(benches);
