//! Ablation of the §3.2.1 mining optimizations: support caching,
//! distinct-projection de-duplication, and non-selective-path skipping.
//! The paper notes that "without the optimizations ... the run time
//! increases by many hours" on CareWeb-scale data.

use eba_bench::bench_config;
use eba_bench::harness::{criterion_group, criterion_main, Criterion};
use eba_core::{mine_one_way, MiningConfig};
use eba_experiments::Scenario;

fn ablation_benches(c: &mut Criterion) {
    let scenario = Scenario::build(bench_config());
    let spec = scenario.train_spec();
    let db = &scenario.hospital.db;

    let variants: [(&str, bool, bool, bool); 5] = [
        ("all_on", true, true, true),
        ("no_cache", false, true, true),
        ("no_dedup", true, false, true),
        ("no_skip", true, true, false),
        ("all_off", false, false, false),
    ];

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    for (name, cache, dedup, skip) in variants {
        let config = MiningConfig {
            support_frac: 0.01,
            max_length: 4,
            max_tables: 3,
            opt_cache: cache,
            opt_dedup: dedup,
            opt_skip: skip,
            ..MiningConfig::default()
        };
        group.bench_function(name, |b| b.iter(|| mine_one_way(db, &spec, &config)));
    }
    group.finish();
}

criterion_group!(benches, ablation_benches);
criterion_main!(benches);
