//! Figure 13's subject as a Criterion benchmark: the three mining
//! algorithms on the same (bench-sized) hospital, at each maximum length.

use eba_bench::bench_config;
use eba_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eba_core::{mine_bridge, mine_one_way, mine_two_way, MiningConfig};
use eba_experiments::Scenario;

fn mining_benches(c: &mut Criterion) {
    let scenario = Scenario::build(bench_config());
    let spec = scenario.train_spec();
    let db = &scenario.hospital.db;

    let mut group = c.benchmark_group("mining");
    group.sample_size(10);
    for max_length in [2usize, 3, 4] {
        let config = MiningConfig {
            support_frac: 0.01,
            max_length,
            max_tables: 3,
            ..MiningConfig::default()
        };
        // The pre-engine path: every candidate re-scans its tables.
        let seed_config = MiningConfig {
            opt_engine: false,
            ..config.clone()
        };
        group.bench_with_input(
            BenchmarkId::new("one_way", max_length),
            &config,
            |b, cfg| b.iter(|| mine_one_way(db, &spec, cfg)),
        );
        group.bench_with_input(
            BenchmarkId::new("one_way_seed", max_length),
            &seed_config,
            |b, cfg| b.iter(|| mine_one_way(db, &spec, cfg)),
        );
        group.bench_with_input(
            BenchmarkId::new("two_way", max_length),
            &config,
            |b, cfg| b.iter(|| mine_two_way(db, &spec, cfg)),
        );
        group.bench_with_input(
            BenchmarkId::new("bridge_2", max_length),
            &config,
            |b, cfg| b.iter(|| mine_bridge(db, &spec, cfg, 2).expect("valid ell")),
        );
        if max_length >= 3 {
            group.bench_with_input(
                BenchmarkId::new("bridge_3", max_length),
                &config,
                |b, cfg| b.iter(|| mine_bridge(db, &spec, cfg, 3).expect("valid ell")),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, mining_benches);
criterion_main!(benches);
