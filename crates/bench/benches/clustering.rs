//! Collaborative-group substrate benchmarks: building `W = AᵀA` from the
//! log and clustering it (flat Louvain and the full hierarchy).

use eba_bench::bench_config;
use eba_bench::harness::{criterion_group, criterion_main, Criterion};
use eba_cluster::{louvain, AccessMatrix, Hierarchy, HierarchyConfig};
use eba_synth::Hospital;

fn clustering_benches(c: &mut Criterion) {
    let h = Hospital::generate(bench_config());
    let log = h.db.table(h.t_log);
    let pairs: Vec<(u32, u32)> = log
        .iter()
        .filter_map(|(_, row)| {
            let p = h.patient_index(row[h.log_cols.patient])?;
            let u = h.user_index(row[h.log_cols.user])?;
            Some((p as u32, u as u32))
        })
        .collect();
    let n_patients = h.world.n_patients();
    let n_users = h.world.n_users();
    let matrix = AccessMatrix::from_pairs(n_patients, n_users, pairs.iter().copied());
    let graph = matrix.similarity_graph(500);

    let mut group = c.benchmark_group("clustering");
    group.bench_function("access_matrix", |b| {
        b.iter(|| AccessMatrix::from_pairs(n_patients, n_users, pairs.iter().copied()))
    });
    group.bench_function("similarity_graph", |b| {
        b.iter(|| matrix.similarity_graph(500))
    });
    group.bench_function("louvain_flat", |b| b.iter(|| louvain(&graph)));
    group.bench_function("hierarchy_8_levels", |b| {
        b.iter(|| Hierarchy::build(&graph, HierarchyConfig::default()))
    });
    group.finish();
}

criterion_group!(benches, clustering_benches);
criterion_main!(benches);
