//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this crate implements the
//! exact surface the workspace's property tests use: the [`Strategy`] trait
//! with `prop_map`, integer/float range strategies, tuple strategies,
//! [`collection::vec`], the [`proptest!`] macro (with
//! `#![proptest_config(...)]`), and the `prop_assert*` macros. Cases are
//! generated deterministically; there is **no shrinking** — a failing case
//! reports its index and message only.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRunner;

    /// Generates random values of an associated type.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Draws one value.
        fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, runner: &mut TestRunner) -> O {
            (self.f)(self.inner.new_value(runner))
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + runner.below(span) as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    (start as i128 + runner.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;

        fn new_value(&self, runner: &mut TestRunner) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + runner.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                    ($(self.$idx.new_value(runner),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;

    /// A length distribution for [`vec`] (inclusive bounds). Mirrors
    /// upstream's `SizeRange` so `1..40`-style literals infer as `usize`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u128 + 1;
            let len = self.size.min + runner.below(span) as usize;
            (0..len).map(|_| self.element.new_value(runner)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic case generation and failure reporting.

    use std::fmt;

    /// Runner configuration (subset of upstream's).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property is checked with.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property check (no shrinking information).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic value source handed to strategies (SplitMix64).
    #[derive(Debug)]
    pub struct TestRunner {
        state: u64,
    }

    impl TestRunner {
        /// A runner for one property; `case` reseeds deterministically.
        pub fn new(config: &ProptestConfig, case: u32) -> Self {
            TestRunner {
                state: 0x9E37_79B9_7F4A_7C15 ^ (u64::from(case) << 32) ^ u64::from(config.cases),
            }
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `0..span` (rejection sampling).
        pub fn below(&mut self, span: u128) -> u128 {
            debug_assert!(span > 0 && span <= u64::MAX as u128);
            let span64 = span as u64;
            if span64 == 1 {
                return 0;
            }
            let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return (v % span64) as u128;
                }
            }
        }

        /// Uniform draw from `[0, 1)` with 53 bits.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of upstream's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running the body over deterministically generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut runner = $crate::test_runner::TestRunner::new(&config, case);
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(
                            &($strat),
                            &mut runner,
                        );
                    )+
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            Ok(())
                        })();
                    if let Err(e) = result {
                        panic!("property failed at case {case}: {e}");
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// `assert!` that reports through the proptest failure path.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest failure path.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {:?} == {:?}: {}",
            a,
            b,
            format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` that reports through the proptest failure path.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {:?} != {:?}: {}",
            a,
            b,
            format!($($fmt)*)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples_compose(v in prop::collection::vec((0..10i64, 0..=3u8), 1..20)) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.len() < 20);
            for (a, b) in &v {
                prop_assert!((0..10).contains(a));
                prop_assert!((0..=3).contains(b));
            }
        }

        #[test]
        fn prop_map_applies(x in (0..5usize).prop_map(|x| x * 2)) {
            prop_assert!(x % 2 == 0, "x = {}", x);
            prop_assert!(x < 10);
        }

        #[test]
        fn float_ranges_bounded(f in 0.25f64..1.5) {
            prop_assert!((0.25..1.5).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0..10i64) {
                prop_assert!(x < 0, "x = {}", x);
            }
        }
        inner();
    }

    #[test]
    fn cases_vary() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            fn collect(v in prop::collection::vec(0..1000i64, 3..6)) {
                prop_assert!(v.iter().all(|x| (0..1000).contains(x)));
            }
        }
        collect();
    }
}
