//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this tiny crate provides
//! the exact API surface the workspace uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer ranges,
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`] — backed by the
//! public-domain xoshiro256++ generator seeded via SplitMix64. Streams are
//! fully deterministic per seed (which is all the synthesizer requires) but
//! are *not* bit-compatible with upstream `rand`'s `StdRng`.

/// A generator seedable from a `u64` (subset of upstream's trait).
pub trait SeedableRng: Sized {
    /// Creates a deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`Rng::gen_range`] can produce. Mirrors upstream's
/// `SampleUniform`; the *blanket* [`SampleRange`] impls over it are what
/// lets inference resolve call sites like `a_u32 + rng.gen_range(10..240)`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Widens to `i128` (every supported integer fits).
    fn to_i128(self) -> i128;
    /// Narrows back from `i128` (always in range by construction).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types usable as `gen_range` argument: `a..b` and `a..=b` over the
/// integer types the workspace samples.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_one(self, rng: &mut impl RngCore) -> T;
}

/// The minimal generation core: a stream of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience methods (subset of upstream's `Rng`).
pub trait Rng: RngCore + Sized {
    /// Uniform value in `range`.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_one(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool called with p = {p}");
        // 53 uniform mantissa bits, like upstream's `f64` sampling.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_one(self, rng: &mut impl RngCore) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let (start, end) = (self.start.to_i128(), self.end.to_i128());
        let span = (end - start) as u128;
        T::from_i128(start + uniform_below(rng, span) as i128)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_one(self, rng: &mut impl RngCore) -> T {
        let (start, end) = (self.start().to_i128(), self.end().to_i128());
        assert!(start <= end, "cannot sample empty range");
        let span = (end - start) as u128 + 1;
        T::from_i128(start + uniform_below(rng, span) as i128)
    }
}

/// Uniform draw from `0..span` by rejection sampling (no modulo bias).
fn uniform_below(rng: &mut impl RngCore, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span > u64::MAX as u128 {
        // Full-width 64-bit range (e.g. `u64::MIN..=u64::MAX`): every
        // 64-bit draw is already uniform, and `span as u64` would be 0.
        return rng.next_u64() as u128;
    }
    if span == 1 {
        return 0;
    }
    // Zone of the largest multiple of `span` that fits in a u64 (span is
    // always well below 2^64 for the integer types above).
    let span64 = span as u64;
    let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span64) as u128;
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for upstream's `StdRng`: xoshiro256++ seeded
    /// through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::{Rng, RngCore};

    /// Subset of upstream's `SliceRandom`: in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly.
        fn shuffle(&mut self, rng: &mut impl RngCore);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle(&mut self, rng: &mut impl RngCore) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
        let mut c = StdRng::seed_from_u64(8);
        let equal = (0..100).all(|_| a.gen_range(0..1_000_000i64) == c.gen_range(0..1_000_000i64));
        assert!(!equal, "different seeds should diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(5..8usize);
            assert!((5..8).contains(&v));
            let w = rng.gen_range(-3..=3i64);
            assert!((-3..=3).contains(&w));
        }
        // Both endpoints of an inclusive range are reachable.
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[(rng.gen_range(-3..=3i64) + 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "50 elements should not shuffle to identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }
}
