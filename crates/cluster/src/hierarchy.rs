//! Hierarchical collaborative groups.
//!
//! §4.1: "We can recursively apply the clustering algorithm on each cluster
//! to produce a hierarchical clustering. Intuitively, clusters produced at
//! the lower levels of the hierarchy will be more connected than clusters
//! produced at higher levels." The paper's data produced an 8-level
//! hierarchy; depth 0 is the degenerate single all-users group (their
//! recall/precision baseline in Figure 12).

use crate::graph::{GraphBuilder, WeightedGraph};
use crate::louvain::louvain;

/// Knobs for hierarchy construction.
#[derive(Debug, Clone, Copy)]
pub struct HierarchyConfig {
    /// Maximum depth to refine to (the paper ended up with 8 levels).
    pub max_depth: usize,
    /// Stop refining a group once it is this small.
    pub min_group_size: usize,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            max_depth: 8,
            min_group_size: 4,
        }
    }
}

/// A hierarchy of group assignments: `levels[d][u]` is user `u`'s group id
/// at depth `d`. Depth 0 always assigns everyone to group 0. Group ids are
/// globally unique across the whole hierarchy (a group that stops splitting
/// keeps its id at deeper levels), so a single `Groups(depth, gid, user)`
/// table can hold all levels.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    levels: Vec<Vec<u32>>,
}

impl Hierarchy {
    /// Builds the hierarchy by recursively clustering `g`.
    pub fn build(g: &WeightedGraph, config: HierarchyConfig) -> Self {
        let n = g.node_count();
        let mut levels: Vec<Vec<u32>> = vec![vec![0; n]];
        let mut next_gid: u32 = 1;
        for depth in 1..=config.max_depth {
            let prev = &levels[depth - 1];
            let mut current = vec![0u32; n];
            let mut changed = false;
            // Refine every group of the previous level independently.
            for (gid, members) in groups_of(prev) {
                if members.len() < config.min_group_size.max(1) {
                    // Too small to split further: keep the previous id.
                    for &u in &members {
                        current[u as usize] = gid;
                    }
                    continue;
                }
                let sub = induced_subgraph(g, &members);
                let p = louvain(&sub);
                if p.community_count <= 1 {
                    for &u in &members {
                        current[u as usize] = gid;
                    }
                    continue;
                }
                changed = true;
                let base = next_gid;
                next_gid += p.community_count as u32;
                for (local, &u) in members.iter().enumerate() {
                    current[u as usize] = base + p.communities[local];
                }
            }
            if !changed && depth > 1 {
                break;
            }
            levels.push(current);
        }
        Hierarchy { levels }
    }

    /// Number of materialized depths (including depth 0).
    pub fn depth_count(&self) -> usize {
        self.levels.len()
    }

    /// Group assignment at `depth`, clamped to the deepest materialized
    /// level (per the paper, groups stabilize once they stop splitting).
    pub fn assignment(&self, depth: usize) -> &[u32] {
        let d = depth.min(self.levels.len() - 1);
        &self.levels[d]
    }

    /// `(group id, members)` pairs at `depth`.
    pub fn groups_at(&self, depth: usize) -> Vec<(u32, Vec<u32>)> {
        groups_of(self.assignment(depth))
    }

    /// Rows for the `Groups(Group_Depth, Group_id, User)` table across all
    /// depths.
    pub fn rows(&self) -> Vec<(u32, u32, u32)> {
        let mut out = Vec::new();
        for (d, level) in self.levels.iter().enumerate() {
            for (u, &g) in level.iter().enumerate() {
                out.push((d as u32, g, u as u32));
            }
        }
        out
    }
}

/// Groups a flat assignment into `(gid, sorted members)`, ordered by gid.
fn groups_of(assignment: &[u32]) -> Vec<(u32, Vec<u32>)> {
    let mut map: std::collections::BTreeMap<u32, Vec<u32>> = std::collections::BTreeMap::new();
    for (u, &g) in assignment.iter().enumerate() {
        map.entry(g).or_default().push(u as u32);
    }
    map.into_iter().collect()
}

/// The subgraph induced by `members` (node ids remapped to `0..len`).
fn induced_subgraph(g: &WeightedGraph, members: &[u32]) -> WeightedGraph {
    let mut local = std::collections::HashMap::with_capacity(members.len());
    for (i, &u) in members.iter().enumerate() {
        local.insert(u, i);
    }
    let mut b = GraphBuilder::new(members.len());
    for (i, &u) in members.iter().enumerate() {
        for &(v, w) in g.neighbors(u as usize) {
            if let Some(&j) = local.get(&v) {
                if i < j {
                    b.add_edge(i, j, w);
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// Four cliques of 4, pairwise bridged into two super-communities.
    fn nested_graph() -> WeightedGraph {
        let mut b = GraphBuilder::new(16);
        for c in 0..4 {
            let base = 4 * c;
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b.add_edge(base + i, base + j, 1.0);
                }
            }
        }
        // Strong bridges inside super-communities {0,1} and {2,3}.
        b.add_edge(0, 4, 0.9);
        b.add_edge(1, 5, 0.9);
        b.add_edge(8, 12, 0.9);
        b.add_edge(9, 13, 0.9);
        // Weak bridge between the super-communities.
        b.add_edge(3, 11, 0.05);
        b.build()
    }

    #[test]
    fn depth_zero_is_one_group() {
        let h = Hierarchy::build(&nested_graph(), HierarchyConfig::default());
        let g0 = h.groups_at(0);
        assert_eq!(g0.len(), 1);
        assert_eq!(g0[0].1.len(), 16);
    }

    #[test]
    fn deeper_levels_refine() {
        let h = Hierarchy::build(&nested_graph(), HierarchyConfig::default());
        let n1 = h.groups_at(1).len();
        let n2 = h.groups_at(2).len();
        assert!(n1 >= 2, "depth 1 should split the single group, got {n1}");
        assert!(n2 >= n1, "refinement must not merge groups");
        // All 16 users are assigned at every depth.
        for d in 0..h.depth_count() {
            let total: usize = h.groups_at(d).iter().map(|(_, m)| m.len()).sum();
            assert_eq!(total, 16);
        }
    }

    #[test]
    fn refinement_is_nested() {
        // Every depth-(d+1) group must be a subset of a depth-d group.
        let h = Hierarchy::build(&nested_graph(), HierarchyConfig::default());
        for d in 0..h.depth_count() - 1 {
            let coarse = h.assignment(d);
            let fine = h.assignment(d + 1);
            let mut seen: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
            for u in 0..16 {
                let parent = seen.entry(fine[u]).or_insert(coarse[u]);
                assert_eq!(*parent, coarse[u], "group {} split across parents", fine[u]);
            }
        }
    }

    #[test]
    fn assignment_clamps_beyond_materialized_depth() {
        let h = Hierarchy::build(&nested_graph(), HierarchyConfig::default());
        let deepest = h.depth_count() - 1;
        assert_eq!(h.assignment(deepest), h.assignment(deepest + 5));
    }

    #[test]
    fn rows_cover_every_depth_and_user() {
        let h = Hierarchy::build(&nested_graph(), HierarchyConfig::default());
        let rows = h.rows();
        assert_eq!(rows.len(), h.depth_count() * 16);
        assert!(rows.iter().any(|&(d, _, _)| d == 0));
    }

    #[test]
    fn group_ids_unique_across_depths_unless_inherited() {
        let h = Hierarchy::build(&nested_graph(), HierarchyConfig::default());
        // A gid used at depth d with different membership must not reappear
        // at depth d+1 with different members.
        for d in 0..h.depth_count() - 1 {
            let now: std::collections::HashMap<u32, Vec<u32>> =
                h.groups_at(d).into_iter().collect();
            for (gid, members) in h.groups_at(d + 1) {
                if let Some(prev) = now.get(&gid) {
                    assert_eq!(prev, &members, "gid {gid} changed membership");
                }
            }
        }
    }

    #[test]
    fn tiny_graph_stops_early() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1.0);
        let h = Hierarchy::build(&b.build(), HierarchyConfig::default());
        assert!(h.depth_count() <= 3);
    }
}
