//! Weighted undirected graphs.

use std::collections::HashMap;

/// Accumulating builder: repeated `add_edge` calls on the same pair sum
/// their weights.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: HashMap<(u32, u32), f64>,
    loops: Vec<f64>,
}

impl GraphBuilder {
    /// A builder for a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: HashMap::new(),
            loops: vec![0.0; n],
        }
    }

    /// Adds (accumulates) an undirected edge of weight `w`. A `u == v` edge
    /// is a self-loop.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize, w: f64) {
        assert!(u < self.n && v < self.n, "edge endpoint out of range");
        if u == v {
            self.loops[u] += w;
            return;
        }
        let key = (u.min(v) as u32, u.max(v) as u32);
        *self.edges.entry(key).or_insert(0.0) += w;
    }

    /// Finalizes into an immutable [`WeightedGraph`].
    pub fn build(self) -> WeightedGraph {
        let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); self.n];
        let mut total = 0.0;
        for (&(u, v), &w) in &self.edges {
            adj[u as usize].push((v, w));
            adj[v as usize].push((u, w));
            total += w;
        }
        for l in &self.loops {
            total += *l;
        }
        // Deterministic neighbor order regardless of hash-map iteration.
        for list in &mut adj {
            list.sort_unstable_by_key(|&(v, _)| v);
        }
        WeightedGraph {
            adj,
            loops: self.loops,
            total_weight: total,
        }
    }
}

/// An immutable weighted undirected graph with self-loops.
///
/// `total_weight` is *m*: each undirected edge counted once, each self-loop
/// counted once. A node's weighted degree counts incident edges once and its
/// self-loop twice (the standard convention, so that `Σᵢ kᵢ = 2m`).
#[derive(Debug, Clone)]
pub struct WeightedGraph {
    adj: Vec<Vec<(u32, f64)>>,
    loops: Vec<f64>,
    total_weight: f64,
}

impl WeightedGraph {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Total edge weight *m* (edges once, self-loops once).
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Neighbors of `u` with weights, sorted by node id. Self-loops are not
    /// listed here; see [`WeightedGraph::loop_weight`].
    pub fn neighbors(&self, u: usize) -> &[(u32, f64)] {
        &self.adj[u]
    }

    /// Self-loop weight of `u`.
    pub fn loop_weight(&self, u: usize) -> f64 {
        self.loops[u]
    }

    /// Weighted degree `k_u` (self-loop counted twice).
    pub fn degree(&self, u: usize) -> f64 {
        self.adj[u].iter().map(|&(_, w)| w).sum::<f64>() + 2.0 * self.loops[u]
    }

    /// The paper's node weight: the sum of the connected edges' weights.
    pub fn node_weight(&self, u: usize) -> f64 {
        self.adj[u].iter().map(|&(_, w)| w).sum()
    }

    /// Weight of the edge `u — v`, if present.
    pub fn edge_weight(&self, u: usize, v: usize) -> Option<f64> {
        let vs = &self.adj[u];
        vs.binary_search_by_key(&(v as u32), |&(n, _)| n)
            .ok()
            .map(|i| vs[i].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_accumulates_parallel_edges() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.25);
        b.add_edge(1, 0, 0.25);
        b.add_edge(1, 2, 1.0);
        let g = b.build();
        assert_eq!(g.edge_weight(0, 1), Some(0.5));
        assert_eq!(g.edge_weight(1, 0), Some(0.5));
        assert_eq!(g.edge_weight(0, 2), None);
        assert!((g.total_weight() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn degree_counts_self_loops_twice() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 0, 2.0);
        let g = b.build();
        assert!((g.degree(0) - 5.0).abs() < 1e-12);
        assert!((g.degree(1) - 1.0).abs() < 1e-12);
        assert!((g.loop_weight(0) - 2.0).abs() < 1e-12);
        // Handshake: Σk = 2m.
        let sum: f64 = (0..2).map(|u| g.degree(u)).sum();
        assert!((sum - 2.0 * g.total_weight()).abs() < 1e-12);
    }

    #[test]
    fn node_weight_excludes_loops() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.36);
        b.add_edge(0, 0, 9.0);
        let g = b.build();
        assert!((g.node_weight(0) - 0.36).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(1);
        b.add_edge(0, 1, 1.0);
    }

    #[test]
    fn neighbors_are_sorted() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(2, 3, 1.0);
        b.add_edge(2, 0, 1.0);
        b.add_edge(2, 1, 1.0);
        let g = b.build();
        let ns: Vec<u32> = g.neighbors(2).iter().map(|&(v, _)| v).collect();
        assert_eq!(ns, vec![0, 1, 3]);
    }
}
