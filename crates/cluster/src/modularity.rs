//! Newman's weighted modularity measure.
//!
//! The paper clusters the user-similarity graph with "an algorithm that
//! attempts to maximize the graph modularity measure \[21\]" (Newman,
//! *Analysis of weighted networks*, Phys. Rev. E 70, 2004). Modularity of a
//! partition is
//!
//! ```text
//! Q = (1/2m) Σ_ij [ A_ij − k_i k_j / 2m ] δ(c_i, c_j)
//! ```
//!
//! i.e. the fraction of edge weight inside communities minus the fraction
//! expected if edges were rewired at random preserving degrees. `Q` lies in
//! `[-1/2, 1)`; higher is better.

use crate::graph::WeightedGraph;

/// Computes weighted modularity of `partition` (a community id per node).
///
/// # Panics
/// Panics if `partition.len() != g.node_count()`.
pub fn modularity(g: &WeightedGraph, partition: &[u32]) -> f64 {
    assert_eq!(
        partition.len(),
        g.node_count(),
        "partition length must equal node count"
    );
    let m = g.total_weight();
    if m <= 0.0 {
        return 0.0;
    }
    let two_m = 2.0 * m;
    let n_comms = partition
        .iter()
        .copied()
        .max()
        .map_or(0, |c| c as usize + 1);
    // Σ_in[c]: total A_ij for i,j in c (each internal edge twice, loops twice);
    // Σ_tot[c]: total degree of c.
    let mut sigma_in = vec![0.0f64; n_comms];
    let mut sigma_tot = vec![0.0f64; n_comms];
    for u in 0..g.node_count() {
        let c = partition[u] as usize;
        sigma_tot[c] += g.degree(u);
        sigma_in[c] += 2.0 * g.loop_weight(u);
        for &(v, w) in g.neighbors(u) {
            if partition[v as usize] as usize == c {
                sigma_in[c] += w; // counted from both endpoints ⇒ ×2 overall
            }
        }
    }
    let mut q = 0.0;
    for c in 0..n_comms {
        q += sigma_in[c] / two_m - (sigma_tot[c] / two_m).powi(2);
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// Two triangles joined by a single bridge edge.
    fn two_triangles() -> WeightedGraph {
        let mut b = GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)] {
            b.add_edge(u, v, 1.0);
        }
        b.build()
    }

    #[test]
    fn all_in_one_community_gives_zero() {
        let g = two_triangles();
        let q = modularity(&g, &[0, 0, 0, 0, 0, 0]);
        assert!(q.abs() < 1e-12, "Q = {q}");
    }

    #[test]
    fn natural_split_beats_trivial_partitions() {
        let g = two_triangles();
        let natural = modularity(&g, &[0, 0, 0, 1, 1, 1]);
        let singletons = modularity(&g, &[0, 1, 2, 3, 4, 5]);
        let lopsided = modularity(&g, &[0, 0, 0, 0, 0, 1]);
        assert!(natural > 0.0);
        assert!(natural > singletons);
        assert!(natural > lopsided);
        // Known value: each triangle has Σ_in/2m = 6/14 = 3/7 and
        // (Σ_tot/2m)² = (7/14)² = 1/4, so Q = 2·(3/7 − 1/4) ≈ 0.3571.
        assert!((natural - (2.0 * (3.0 / 7.0 - 0.25))).abs() < 1e-9);
    }

    #[test]
    fn modularity_is_bounded() {
        let g = two_triangles();
        for p in [
            vec![0u32, 0, 0, 1, 1, 1],
            vec![0, 1, 0, 1, 0, 1],
            vec![0, 0, 1, 1, 2, 2],
        ] {
            let q = modularity(&g, &p);
            assert!((-0.5..1.0).contains(&q), "Q = {q} out of bounds");
        }
    }

    #[test]
    fn weights_matter() {
        // Heavy edge inside community 0 increases its Q relative to the
        // unweighted case when the partition keeps the heavy edge internal.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 10.0);
        b.add_edge(2, 3, 1.0);
        b.add_edge(1, 2, 1.0);
        let g = b.build();
        let split = modularity(&g, &[0, 0, 1, 1]);
        let merged = modularity(&g, &[0, 0, 0, 0]);
        assert!(split > merged);
    }

    #[test]
    fn empty_graph_is_zero() {
        let g = GraphBuilder::new(3).build();
        assert_eq!(modularity(&g, &[0, 1, 2]), 0.0);
    }

    #[test]
    #[should_panic(expected = "partition length")]
    fn wrong_partition_length_panics() {
        let g = GraphBuilder::new(2).build();
        modularity(&g, &[0]);
    }
}
