//! The patient×user access matrix and the user-similarity graph `W = AᵀA`.
//!
//! §4.1 of the paper: for a log with `m` patients and `n` users, build the
//! matrix `A` where `A[i,j] = 1 / |users who accessed patient i's record|`
//! if user `j` accessed patient `i` (0 otherwise). The similarity of two
//! users is `W[u1,u2] = (AᵀA)[u1,u2]`, i.e. for every co-accessed patient
//! the pair gains `1/k²` where `k` is the number of users who touched that
//! record — widely-accessed records contribute little. The weight only
//! considers *whether* a user accessed a record, not how many times.

use crate::graph::{GraphBuilder, WeightedGraph};
use std::collections::HashSet;

/// Sparse patient×user access-incidence matrix.
#[derive(Debug, Clone)]
pub struct AccessMatrix {
    n_users: usize,
    /// Per patient: the sorted distinct users who accessed the record.
    patient_users: Vec<Vec<u32>>,
}

impl AccessMatrix {
    /// Builds the matrix from `(patient, user)` access pairs. `n_patients`
    /// and `n_users` bound the index spaces; duplicate pairs collapse.
    ///
    /// # Panics
    /// Panics if a pair is out of range.
    pub fn from_pairs<I>(n_patients: usize, n_users: usize, pairs: I) -> Self
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        let mut sets: Vec<HashSet<u32>> = vec![HashSet::new(); n_patients];
        for (p, u) in pairs {
            assert!((p as usize) < n_patients, "patient index out of range");
            assert!((u as usize) < n_users, "user index out of range");
            sets[p as usize].insert(u);
        }
        let patient_users = sets
            .into_iter()
            .map(|s| {
                let mut v: Vec<u32> = s.into_iter().collect();
                v.sort_unstable();
                v
            })
            .collect();
        AccessMatrix {
            n_users,
            patient_users,
        }
    }

    /// Number of users (columns).
    pub fn user_count(&self) -> usize {
        self.n_users
    }

    /// Number of patients (rows).
    pub fn patient_count(&self) -> usize {
        self.patient_users.len()
    }

    /// `A[i,j]`: `1/k_i` if user `j` accessed patient `i`, else 0.
    pub fn entry(&self, patient: u32, user: u32) -> f64 {
        let users = &self.patient_users[patient as usize];
        if users.binary_search(&user).is_ok() {
            1.0 / users.len() as f64
        } else {
            0.0
        }
    }

    /// Builds the user-similarity graph `W = AᵀA` (off-diagonal part).
    ///
    /// `max_accessors_per_patient` skips records touched by more users than
    /// the cap: such records contribute `O(k²)` pairs each of weight `1/k²`
    /// (vanishing signal, quadratic cost). `usize::MAX` disables the cap;
    /// the default experiments use a generous cap that our synthetic data
    /// never hits, so capping is purely a safety valve.
    pub fn similarity_graph(&self, max_accessors_per_patient: usize) -> WeightedGraph {
        let mut b = GraphBuilder::new(self.n_users);
        for users in &self.patient_users {
            let k = users.len();
            if k < 2 || k > max_accessors_per_patient {
                continue;
            }
            let w = 1.0 / (k as f64 * k as f64);
            for i in 0..k {
                for j in (i + 1)..k {
                    b.add_edge(users[i] as usize, users[j] as usize, w);
                }
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact worked example of Figure 5: patients A,B,C,D with user
    /// sets {0,1,2}, {0,2}, {1,2}, {2,3}.
    fn figure5() -> AccessMatrix {
        AccessMatrix::from_pairs(
            4,
            4,
            [
                (0, 0),
                (0, 1),
                (0, 2),
                (1, 0),
                (1, 2),
                (2, 1),
                (2, 2),
                (3, 2),
                (3, 3),
            ],
        )
    }

    #[test]
    fn entries_are_inverse_accessor_counts() {
        let a = figure5();
        // Paper: A[patient A, user 0] = 1/3.
        assert!((a.entry(0, 0) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(a.entry(0, 3), 0.0);
        assert!((a.entry(3, 3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn figure5_edge_weights_match_paper() {
        let g = figure5().similarity_graph(usize::MAX);
        // Paper figure labels: W[0,1]=0.11, W[0,2]=0.36, W[1,2]=0.36,
        // W[2,3]=0.25.
        let w01 = g.edge_weight(0, 1).unwrap();
        let w02 = g.edge_weight(0, 2).unwrap();
        let w12 = g.edge_weight(1, 2).unwrap();
        let w23 = g.edge_weight(2, 3).unwrap();
        assert!((w01 - 1.0 / 9.0).abs() < 1e-12, "w01={w01}");
        assert!((w02 - (1.0 / 9.0 + 0.25)).abs() < 1e-12, "w02={w02}");
        assert!((w12 - (1.0 / 9.0 + 0.25)).abs() < 1e-12, "w12={w12}");
        assert!((w23 - 0.25).abs() < 1e-12, "w23={w23}");
        assert_eq!(g.edge_weight(0, 3), None);
        assert_eq!(g.edge_weight(1, 3), None);
    }

    #[test]
    fn duplicate_accesses_do_not_change_weights() {
        // "Our current approach does not adjust the weight depending on the
        // number of times a user accesses a specific record."
        let once = AccessMatrix::from_pairs(1, 2, [(0, 0), (0, 1)]);
        let many = AccessMatrix::from_pairs(1, 2, [(0, 0), (0, 1), (0, 0), (0, 1), (0, 0)]);
        let w_once = once.similarity_graph(usize::MAX).edge_weight(0, 1);
        let w_many = many.similarity_graph(usize::MAX).edge_weight(0, 1);
        assert_eq!(w_once, w_many);
    }

    #[test]
    fn singleton_patients_contribute_nothing() {
        let a = AccessMatrix::from_pairs(2, 3, [(0, 0), (1, 1)]);
        let g = a.similarity_graph(usize::MAX);
        assert_eq!(g.total_weight(), 0.0);
    }

    #[test]
    fn cap_skips_widely_accessed_records() {
        let a = AccessMatrix::from_pairs(1, 5, (0..5).map(|u| (0, u)));
        let uncapped = a.similarity_graph(usize::MAX);
        assert!(uncapped.total_weight() > 0.0);
        let capped = a.similarity_graph(4);
        assert_eq!(capped.total_weight(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pair_panics() {
        AccessMatrix::from_pairs(1, 1, [(0, 5)]);
    }
}
