//! Parameter-free greedy modularity maximization (Louvain method).
//!
//! The paper's clustering step needs an algorithm that (a) maximizes
//! Newman's weighted modularity and (b) "is parameter-free in the sense
//! that it selects the number of clusters automatically". The Louvain
//! method (Blondel et al.) satisfies both: it repeatedly moves nodes to the
//! neighboring community with the highest modularity gain, then contracts
//! communities into super-nodes, until no move improves Q.
//!
//! This implementation is deterministic: nodes are visited in id order and
//! ties are broken toward the smallest community id, so the same graph
//! always yields the same partition (important for reproducible
//! experiments).

use crate::graph::{GraphBuilder, WeightedGraph};
use crate::modularity::modularity;
use std::collections::HashMap;

/// Result of a clustering run.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// Community id per node, compacted to `0..community_count`.
    pub communities: Vec<u32>,
    /// Number of communities.
    pub community_count: usize,
    /// Modularity of the partition.
    pub modularity: f64,
}

impl Partition {
    /// Nodes grouped by community id.
    pub fn groups(&self) -> Vec<Vec<u32>> {
        let mut groups = vec![Vec::new(); self.community_count];
        for (node, &c) in self.communities.iter().enumerate() {
            groups[c as usize].push(node as u32);
        }
        groups
    }
}

/// Runs Louvain to convergence and returns the final partition.
///
/// Isolated nodes (degree 0) end up in singleton communities.
pub fn louvain(g: &WeightedGraph) -> Partition {
    let n = g.node_count();
    if n == 0 {
        return Partition {
            communities: Vec::new(),
            community_count: 0,
            modularity: 0.0,
        };
    }
    // node -> community in the *original* graph, refined level by level.
    let mut assignment: Vec<u32> = (0..n as u32).collect();
    let mut level_graph = g.clone();

    loop {
        let (local, moved) = local_moving(&level_graph);
        if !moved {
            break;
        }
        let compact = compact_ids(&local);
        let n_comms = compact.iter().copied().max().map_or(0, |c| c as usize + 1);
        for a in assignment.iter_mut() {
            *a = compact[*a as usize];
        }
        if n_comms == level_graph.node_count() {
            break;
        }
        level_graph = aggregate(&level_graph, &compact, n_comms);
    }

    let compact = compact_ids(&assignment);
    let community_count = compact.iter().copied().max().map_or(0, |c| c as usize + 1);
    let q = modularity(g, &compact);
    Partition {
        communities: compact,
        community_count,
        modularity: q,
    }
}

/// One level of local moving. Returns the (non-compacted) community per node
/// and whether any node moved.
fn local_moving(g: &WeightedGraph) -> (Vec<u32>, bool) {
    let n = g.node_count();
    let m = g.total_weight();
    let mut comm: Vec<u32> = (0..n as u32).collect();
    if m <= 0.0 {
        return (comm, false);
    }
    let k: Vec<f64> = (0..n).map(|u| g.degree(u)).collect();
    let mut sigma_tot: Vec<f64> = k.clone();
    let mut any_moved = false;
    // Bounded number of passes as a safety net; convergence is typical in
    // far fewer.
    for _ in 0..128 {
        let mut moved_this_pass = false;
        for u in 0..n {
            let old = comm[u] as usize;
            sigma_tot[old] -= k[u];
            // Weight from u to each neighboring community (including old).
            let mut to_comm: HashMap<u32, f64> = HashMap::new();
            to_comm.insert(old as u32, 0.0);
            for &(v, w) in g.neighbors(u) {
                *to_comm.entry(comm[v as usize]).or_insert(0.0) += w;
            }
            // Deterministic scan: by community id.
            let mut candidates: Vec<(u32, f64)> = to_comm.into_iter().collect();
            candidates.sort_unstable_by_key(|&(c, _)| c);
            let mut best_c = old as u32;
            let mut best_gain = f64::NEG_INFINITY;
            for (c, w_uc) in candidates {
                let gain = w_uc - sigma_tot[c as usize] * k[u] / (2.0 * m);
                if gain > best_gain + 1e-12 {
                    best_gain = gain;
                    best_c = c;
                }
            }
            sigma_tot[best_c as usize] += k[u];
            if best_c as usize != old {
                comm[u] = best_c;
                moved_this_pass = true;
                any_moved = true;
            }
        }
        if !moved_this_pass {
            break;
        }
    }
    (comm, any_moved)
}

/// Renumbers arbitrary community ids to `0..k` in order of first appearance.
fn compact_ids(assignment: &[u32]) -> Vec<u32> {
    let mut remap: HashMap<u32, u32> = HashMap::new();
    let mut out = Vec::with_capacity(assignment.len());
    for &a in assignment {
        let next = remap.len() as u32;
        let id = *remap.entry(a).or_insert(next);
        out.push(id);
    }
    out
}

/// Contracts communities into super-nodes; inter-community weights sum into
/// edges, intra-community weight becomes a self-loop.
fn aggregate(g: &WeightedGraph, compact: &[u32], n_comms: usize) -> WeightedGraph {
    let mut b = GraphBuilder::new(n_comms);
    for u in 0..g.node_count() {
        let cu = compact[u] as usize;
        if g.loop_weight(u) != 0.0 {
            b.add_edge(cu, cu, g.loop_weight(u));
        }
        for &(v, w) in g.neighbors(u) {
            let cv = compact[v as usize] as usize;
            // Each undirected edge appears twice in adjacency; keep half.
            if u < v as usize {
                b.add_edge(cu, cv, w);
            } else if u == v as usize {
                unreachable!("self-loops are not stored in adjacency");
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn two_cliques(k: usize, bridge_w: f64) -> WeightedGraph {
        let mut b = GraphBuilder::new(2 * k);
        for i in 0..k {
            for j in (i + 1)..k {
                b.add_edge(i, j, 1.0);
                b.add_edge(k + i, k + j, 1.0);
            }
        }
        b.add_edge(0, k, bridge_w);
        b.build()
    }

    #[test]
    fn separates_two_cliques() {
        let g = two_cliques(5, 0.1);
        let p = louvain(&g);
        assert_eq!(p.community_count, 2);
        // Every node in the first clique shares a community, ditto second.
        let c0 = p.communities[0];
        let c5 = p.communities[5];
        assert_ne!(c0, c5);
        assert!(p.communities[..5].iter().all(|&c| c == c0));
        assert!(p.communities[5..].iter().all(|&c| c == c5));
        assert!(p.modularity > 0.3);
    }

    #[test]
    fn partition_matches_reported_modularity() {
        let g = two_cliques(4, 0.5);
        let p = louvain(&g);
        let q = modularity(&g, &p.communities);
        assert!((q - p.modularity).abs() < 1e-12);
    }

    #[test]
    fn figure5_users_0_1_2_cluster_together() {
        // The worked example of Figure 5: weights 0.11 (0–1), 0.36 (0–2),
        // 0.36 (1–2), 0.25 (2–3). The paper reports users 0, 1 and 2
        // assigned to the same cluster (it makes no claim about user 3;
        // at this scale pure modularity can merge the whole graph).
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.11);
        b.add_edge(0, 2, 0.36);
        b.add_edge(1, 2, 0.36);
        b.add_edge(2, 3, 0.25);
        let g = b.build();
        let p = louvain(&g);
        assert_eq!(p.communities[0], p.communities[1]);
        assert_eq!(p.communities[1], p.communities[2]);
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let p = louvain(&GraphBuilder::new(0).build());
        assert_eq!(p.community_count, 0);
        let p = louvain(&GraphBuilder::new(1).build());
        assert_eq!(p.community_count, 1);
        assert_eq!(p.communities, vec![0]);
    }

    #[test]
    fn isolated_nodes_stay_singletons() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        let p = louvain(&g);
        assert_eq!(p.communities[0], p.communities[1]);
        assert_ne!(p.communities[2], p.communities[0]);
        assert_ne!(p.communities[3], p.communities[2]);
    }

    #[test]
    fn deterministic_across_runs() {
        let g = two_cliques(6, 0.2);
        let p1 = louvain(&g);
        let p2 = louvain(&g);
        assert_eq!(p1, p2);
    }

    #[test]
    fn groups_partition_all_nodes() {
        let g = two_cliques(3, 0.1);
        let p = louvain(&g);
        let total: usize = p.groups().iter().map(Vec::len).sum();
        assert_eq!(total, 6);
    }
}
