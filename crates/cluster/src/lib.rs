//! # eba-cluster
//!
//! Collaborative-group inference (§4 of *Explanation-Based Auditing*).
//!
//! Databases like CareWeb do not record which users work together, yet that
//! relationship explains many accesses (the nurse accesses a record because
//! she works with the doctor who has the appointment). The paper infers the
//! missing relationships from the access log itself:
//!
//! 1. build the patient×user matrix `A` with `A[i,j] = 1 / |users who
//!    accessed patient i|` ([`AccessMatrix`]),
//! 2. form the user-similarity graph `W = AᵀA`
//!    ([`AccessMatrix::similarity_graph`]),
//! 3. cluster it by maximizing Newman's weighted modularity
//!    ([`modularity()`], [`louvain()`]) — the optimizer is parameter-free, it
//!    picks the number of clusters itself,
//! 4. recursively re-cluster each community to obtain a hierarchy of
//!    increasingly tight groups ([`Hierarchy`]), which becomes the
//!    `Groups(Group_Depth, Group_id, User)` table.
//!
//! The original system used a Java implementation of the modularity
//! algorithm; this crate is a from-scratch Rust replacement.

pub mod access;
pub mod graph;
pub mod hierarchy;
pub mod louvain;
pub mod modularity;

pub use access::AccessMatrix;
pub use graph::{GraphBuilder, WeightedGraph};
pub use hierarchy::{Hierarchy, HierarchyConfig};
pub use louvain::{louvain, Partition};
pub use modularity::modularity;
