//! A minimal blocking client for the `eba-serve` line protocol, used by
//! the `eba client` subcommand, the socket-level test harness, and the
//! server benchmark workload.

use crate::protocol::IngestRow;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Capped exponential backoff for transient rejections: connect refusals
/// and the server's typed overload answers (`ERR busy` at admission,
/// `ERR overloaded` on a shed ingest). Both rejections are safe to
/// retry by construction — a busy server closed without starting a
/// session, and a shed ingest published nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How many retries after the first attempt (0: fail fast).
    pub retries: u32,
    /// Delay before the first retry; doubles per attempt.
    pub base: Duration,
    /// Ceiling on the per-attempt delay.
    pub cap: Duration,
}

impl RetryPolicy {
    /// No retries: every transient rejection surfaces immediately.
    pub const NONE: RetryPolicy = RetryPolicy {
        retries: 0,
        base: Duration::from_millis(0),
        cap: Duration::from_millis(0),
    };

    /// A sensible interactive default: 5 retries, 50 ms doubling to a
    /// 2 s cap — at most ~4 s of accumulated waiting.
    pub fn backoff() -> RetryPolicy {
        RetryPolicy {
            retries: 5,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
        }
    }

    /// The delay before retry number `attempt` (0-based): `base << attempt`
    /// capped at `cap`, then scaled by a jitter factor in `[0.5, 1.0)` so
    /// a fleet of rejected clients does not reconverge in lockstep.
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = self
            .base
            .checked_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .unwrap_or(self.cap)
            .min(self.cap);
        // 0.5 + jitter/2 where jitter is uniform-ish in [0, 1).
        let jitter = (next_jitter() % 1_000) as f64 / 1_000.0;
        exp.mul_f64(0.5 + jitter / 2.0)
    }

    /// How long to actually wait before retry number `attempt`, honouring
    /// the server's `retry-after-ms` hint when one arrived: the larger of
    /// the jittered backoff and the hint. The hint is a floor, not a
    /// replacement — a client deep into its own backoff must not *shorten*
    /// its wait, and one early in it must not hammer a server that just
    /// said "not for another N ms".
    pub fn wait(&self, attempt: u32, hint: Option<Duration>) -> Duration {
        let backoff = self.delay(attempt);
        match hint {
            Some(h) => h.max(backoff),
            None => backoff,
        }
    }
}

/// Extracts the server's `retry-after-ms <n>` hint from an `ERR` head
/// line (or any error text that embeds one, e.g. the `ConnectionRefused`
/// wrapped around an `ERR busy` greeting).
pub fn retry_after_hint(text: &str) -> Option<Duration> {
    let mut tokens = text.split_whitespace();
    while let Some(t) = tokens.next() {
        if t == "retry-after-ms" {
            return tokens.next()?.parse().ok().map(Duration::from_millis);
        }
    }
    None
}

/// Process-global xorshift state for retry jitter. Seeded from the clock
/// once; quality only has to be "clients desynchronize", not crypto.
fn next_jitter() -> u64 {
    static STATE: AtomicU64 = AtomicU64::new(0);
    let mut x = STATE.load(Ordering::Relaxed);
    if x == 0 {
        x = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64)
            .unwrap_or(0x9e37_79b9)
            | 1;
    }
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    STATE.store(x, Ordering::Relaxed);
    x
}

/// Client-side socket deadlines. The defaults bound every blocking call:
/// a dead server (or a black-holed route) turns into an `Err` after the
/// deadline instead of hanging the caller forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// How long to wait for the TCP connect to complete.
    pub connect_timeout: Duration,
    /// Deadline for each blocking read (`None`: wait forever).
    pub read_timeout: Option<Duration>,
    /// Deadline for each blocking write (`None`: wait forever).
    pub write_timeout: Option<Duration>,
    /// Backoff for transient rejections (defaults to [`RetryPolicy::NONE`]
    /// so nothing retries unless the caller opts in).
    pub retry: RetryPolicy,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_secs(30),
            read_timeout: Some(Duration::from_secs(120)),
            write_timeout: Some(Duration::from_secs(120)),
            retry: RetryPolicy::NONE,
        }
    }
}

/// One parsed reply frame: the `OK`/`ERR` head line plus data lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The head line.
    pub head: String,
    /// The data lines (without the terminating `.`).
    pub body: Vec<String>,
}

impl Reply {
    /// Whether the head line reports success.
    pub fn is_ok(&self) -> bool {
        self.head.starts_with("OK")
    }

    /// Whether this frame is a server-pushed `EVENT` (a subscribed
    /// session's feed), as opposed to an `OK`/`ERR` reply.
    pub fn is_event(&self) -> bool {
        self.head.starts_with("EVENT")
    }

    /// The full reply as the bytes-on-the-wire text (head + body, newline
    /// separated, without the frame terminator) — what the byte-stability
    /// tests compare.
    pub fn render(&self) -> String {
        let mut out = self.head.clone();
        for line in &self.body {
            out.push('\n');
            out.push_str(line);
        }
        out
    }

    /// Looks up `key <value>` in the head line's space-separated tokens
    /// (e.g. `field("epoch")` on `OK metrics epoch 3` yields `Some("3")`).
    pub fn field(&self, key: &str) -> Option<&str> {
        let mut tokens = self.head.split_whitespace();
        while let Some(t) = tokens.next() {
            if t == key {
                return tokens.next();
            }
        }
        None
    }

    /// The server's `retry-after-ms` hint from the head line, if any
    /// (`ERR busy` and `ERR overloaded` both carry one).
    pub fn retry_after(&self) -> Option<Duration> {
        retry_after_hint(&self.head)
    }

    /// [`Reply::field`] over a body line's leading `key`, e.g.
    /// `body_field("anchor_total")` on a `METRICS` reply.
    pub fn body_field(&self, key: &str) -> Option<&str> {
        self.body.iter().find_map(|line| {
            let rest = line.strip_prefix(key)?;
            rest.strip_prefix(' ')
                .map(|r| r.split_whitespace().next().unwrap_or(""))
        })
    }
}

/// A connected protocol session.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    greeting: Reply,
    config: ClientConfig,
}

/// Whether a failed connection attempt is worth retrying under the
/// configured policy: the server refused/reset us (including the typed
/// `ERR busy` greeting, which arrives as `ConnectionRefused`).
fn connect_retryable(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
    )
}

impl Client {
    /// Connects with the default deadlines ([`ClientConfig::default`])
    /// and consumes the greeting frame.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// [`Client::connect`] with explicit deadlines and retry policy: the
    /// connect itself is bounded by `connect_timeout` (each resolved
    /// address is tried in turn), every later read/write by the
    /// respective deadline, and refused/busy attempts are retried with
    /// capped exponential backoff per `config.retry`.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> std::io::Result<Client> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to no candidates",
            ));
        }
        let mut attempt = 0u32;
        loop {
            match Self::connect_once(&addrs, config) {
                Ok(client) => return Ok(client),
                Err(e) if connect_retryable(&e) && attempt < config.retry.retries => {
                    // An `ERR busy` refusal carries the server's own
                    // `retry-after-ms` estimate in the wrapped head line;
                    // honour it as a floor under the local backoff.
                    let hint = retry_after_hint(&e.to_string());
                    std::thread::sleep(config.retry.wait(attempt, hint));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn connect_once(addrs: &[SocketAddr], config: ClientConfig) -> std::io::Result<Client> {
        let mut last_err = None;
        let mut writer = None;
        for addr in addrs {
            match TcpStream::connect_timeout(addr, config.connect_timeout) {
                Ok(stream) => {
                    writer = Some(stream);
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let writer = writer.ok_or_else(|| {
            last_err.unwrap_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "address resolved to no candidates",
                )
            })
        })?;
        // Request/response over small frames: Nagle + delayed ACK would
        // add tens of milliseconds per question.
        writer.set_nodelay(true)?;
        writer.set_read_timeout(config.read_timeout)?;
        writer.set_write_timeout(config.write_timeout)?;
        let reader = BufReader::new(writer.try_clone()?);
        let mut client = Client {
            reader,
            writer,
            greeting: Reply {
                head: String::new(),
                body: Vec::new(),
            },
            config,
        };
        client.greeting = client.read_reply()?;
        if !client.greeting.is_ok() {
            // Admission control answered in the greeting position and is
            // about to close. `ERR busy` maps to `ConnectionRefused` so
            // the retry loop treats it like any other refusal; anything
            // else is a hard error.
            let head = client.greeting.head.clone();
            return Err(if head.starts_with("ERR busy") {
                std::io::Error::new(std::io::ErrorKind::ConnectionRefused, head)
            } else {
                std::io::Error::other(head)
            });
        }
        Ok(client)
    }

    /// The greeting frame the server sent on connect.
    pub fn greeting(&self) -> &Reply {
        &self.greeting
    }

    /// Sends one command line and reads the framed reply.
    pub fn send(&mut self, line: &str) -> std::io::Result<Reply> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_reply()
    }

    /// Sends an `INGEST` batch (command line + row lines) and reads the
    /// reply.
    pub fn ingest(&mut self, rows: &[IngestRow]) -> std::io::Result<Reply> {
        let mut batch = format!("INGEST {}\n", rows.len());
        for r in rows {
            batch.push_str(&r.render());
            batch.push('\n');
        }
        self.writer.write_all(batch.as_bytes())?;
        self.writer.flush()?;
        self.read_reply()
    }

    /// [`Client::ingest`], retrying `ERR overloaded` sheds under the
    /// session's [`RetryPolicy`]. A shed batch published nothing (the
    /// server refuses before touching the engine), so resending the same
    /// rows is exactly-once safe. Returns the final reply — still `ERR
    /// overloaded` if every retry was shed.
    pub fn ingest_with_retry(&mut self, rows: &[IngestRow]) -> std::io::Result<Reply> {
        let policy = self.config.retry;
        let mut attempt = 0u32;
        loop {
            let reply = self.ingest(rows)?;
            if reply.is_ok()
                || !reply.head.starts_with("ERR overloaded")
                || attempt >= policy.retries
            {
                return Ok(reply);
            }
            // The shed reply names how long the writer expects to stay
            // saturated; wait at least that long (the hint floors the
            // jittered backoff, it never shortens it).
            std::thread::sleep(policy.wait(attempt, reply.retry_after()));
            attempt += 1;
        }
    }

    /// Half-closes the write side (the server sees EOF); any buffered
    /// replies can still be drained with [`Client::drain`].
    pub fn finish_writes(&mut self) -> std::io::Result<()> {
        self.writer.shutdown(std::net::Shutdown::Write)
    }

    /// Reads everything until the server closes the connection.
    pub fn drain(&mut self) -> std::io::Result<String> {
        let mut rest = String::new();
        self.reader.read_to_string(&mut rest)?;
        Ok(rest)
    }

    /// Writes raw bytes (for protocol-fuzzing tests).
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }

    /// Reads one framed reply without sending anything first — for tests
    /// that drive the wire with [`Client::send_raw`] and for replies the
    /// server initiates (e.g. `ERR timeout` on an expired deadline).
    pub fn read_reply_frame(&mut self) -> std::io::Result<Reply> {
        self.read_reply()
    }

    /// Blocks for the next server-initiated frame on a subscribed
    /// session — an `EVENT` push, the shed notice (`ERR slow-consumer`),
    /// or `OK bye` after `QUIT` was sent. Identical to
    /// [`Client::read_reply_frame`]; the name documents intent at the
    /// call site.
    pub fn next_event(&mut self) -> std::io::Result<Reply> {
        self.read_reply()
    }

    fn read_reply(&mut self) -> std::io::Result<Reply> {
        let mut head = String::new();
        if self.reader.read_line(&mut head)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before a reply head line",
            ));
        }
        let head = head.trim_end().to_string();
        let mut body = Vec::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed inside a reply frame",
                ));
            }
            let line = line.trim_end();
            if line == "." {
                return Ok(Reply { head, body });
            }
            body.push(line.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_delay_is_capped_exponential_with_bounded_jitter() {
        let p = RetryPolicy {
            retries: 8,
            base: Duration::from_millis(100),
            cap: Duration::from_secs(1),
        };
        for attempt in 0..12 {
            let nominal = Duration::from_millis(100)
                .checked_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
                .unwrap_or(p.cap)
                .min(p.cap);
            let d = p.delay(attempt);
            assert!(d >= nominal.mul_f64(0.5), "attempt {attempt}: {d:?}");
            assert!(d <= nominal, "attempt {attempt}: {d:?} over {nominal:?}");
        }
        // Deep attempts never overflow the shift — they just sit at cap.
        assert!(p.delay(40) <= Duration::from_secs(1));
    }

    #[test]
    fn retry_after_hints_parse_from_err_heads() {
        assert_eq!(
            retry_after_hint(
                "ERR busy connection cap reached (1 live / max 1); retry-after-ms 1000"
            ),
            Some(Duration::from_millis(1000))
        );
        assert_eq!(
            retry_after_hint(
                "ERR overloaded ingest writer saturated (3 batch(es) in flight); \
                 batch shed, nothing published; retry-after-ms 300"
            ),
            Some(Duration::from_millis(300))
        );
        // No hint, dangling key, and a non-numeric value all yield None.
        assert_eq!(retry_after_hint("ERR bad-request usage: PING"), None);
        assert_eq!(retry_after_hint("retry-after-ms"), None);
        assert_eq!(retry_after_hint("retry-after-ms soon"), None);
        let reply = Reply {
            head: "ERR overloaded shed; retry-after-ms 250".into(),
            body: Vec::new(),
        };
        assert_eq!(reply.retry_after(), Some(Duration::from_millis(250)));
    }

    #[test]
    fn server_hint_floors_the_backoff_but_never_shortens_it() {
        let p = RetryPolicy {
            retries: 5,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
        };
        // A hint far above the early backoff wins outright.
        let hint = Duration::from_millis(900);
        assert_eq!(p.wait(0, Some(hint)), hint);
        // A tiny hint never pulls the wait below the jittered backoff.
        for attempt in 0..6 {
            let w = p.wait(attempt, Some(Duration::from_millis(1)));
            assert!(w >= p.delay(attempt).min(Duration::from_millis(1)));
            assert!(w >= Duration::from_millis(1));
        }
        // No hint degrades to the plain backoff range.
        let w = p.wait(2, None);
        assert!(w <= Duration::from_millis(40), "{w:?}");
    }

    #[test]
    fn retry_none_is_the_default_and_fails_fast() {
        assert_eq!(ClientConfig::default().retry, RetryPolicy::NONE);
        assert_eq!(RetryPolicy::NONE.retries, 0);
    }

    #[test]
    fn reply_fields_parse() {
        let r = Reply {
            head: "OK metrics epoch 3".into(),
            body: vec!["anchor_total 120".into(), "recall 0.812500".into()],
        };
        assert!(r.is_ok());
        assert_eq!(r.field("epoch"), Some("3"));
        assert_eq!(r.field("metrics"), Some("epoch"));
        assert_eq!(r.field("nope"), None);
        assert_eq!(r.body_field("anchor_total"), Some("120"));
        assert_eq!(r.body_field("recall"), Some("0.812500"));
        assert_eq!(r.body_field("anchor"), None, "whole-key match only");
        assert_eq!(
            r.render(),
            "OK metrics epoch 3\nanchor_total 120\nrecall 0.812500"
        );
    }
}
