//! A minimal blocking client for the `eba-serve` line protocol, used by
//! the `eba client` subcommand, the socket-level test harness, and the
//! server benchmark workload.

use crate::protocol::IngestRow;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side socket deadlines. The defaults bound every blocking call:
/// a dead server (or a black-holed route) turns into an `Err` after the
/// deadline instead of hanging the caller forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// How long to wait for the TCP connect to complete.
    pub connect_timeout: Duration,
    /// Deadline for each blocking read (`None`: wait forever).
    pub read_timeout: Option<Duration>,
    /// Deadline for each blocking write (`None`: wait forever).
    pub write_timeout: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_secs(30),
            read_timeout: Some(Duration::from_secs(120)),
            write_timeout: Some(Duration::from_secs(120)),
        }
    }
}

/// One parsed reply frame: the `OK`/`ERR` head line plus data lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The head line.
    pub head: String,
    /// The data lines (without the terminating `.`).
    pub body: Vec<String>,
}

impl Reply {
    /// Whether the head line reports success.
    pub fn is_ok(&self) -> bool {
        self.head.starts_with("OK")
    }

    /// The full reply as the bytes-on-the-wire text (head + body, newline
    /// separated, without the frame terminator) — what the byte-stability
    /// tests compare.
    pub fn render(&self) -> String {
        let mut out = self.head.clone();
        for line in &self.body {
            out.push('\n');
            out.push_str(line);
        }
        out
    }

    /// Looks up `key <value>` in the head line's space-separated tokens
    /// (e.g. `field("epoch")` on `OK metrics epoch 3` yields `Some("3")`).
    pub fn field(&self, key: &str) -> Option<&str> {
        let mut tokens = self.head.split_whitespace();
        while let Some(t) = tokens.next() {
            if t == key {
                return tokens.next();
            }
        }
        None
    }

    /// [`Reply::field`] over a body line's leading `key`, e.g.
    /// `body_field("anchor_total")` on a `METRICS` reply.
    pub fn body_field(&self, key: &str) -> Option<&str> {
        self.body.iter().find_map(|line| {
            let rest = line.strip_prefix(key)?;
            rest.strip_prefix(' ')
                .map(|r| r.split_whitespace().next().unwrap_or(""))
        })
    }
}

/// A connected protocol session.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    greeting: Reply,
}

impl Client {
    /// Connects with the default deadlines ([`ClientConfig::default`])
    /// and consumes the greeting frame.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// [`Client::connect`] with explicit deadlines: the connect itself is
    /// bounded by `connect_timeout` (each resolved address is tried in
    /// turn), and every later read/write by the respective deadline.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> std::io::Result<Client> {
        let mut last_err = None;
        let mut writer = None;
        for addr in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, config.connect_timeout) {
                Ok(stream) => {
                    writer = Some(stream);
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let writer = writer.ok_or_else(|| {
            last_err.unwrap_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "address resolved to no candidates",
                )
            })
        })?;
        // Request/response over small frames: Nagle + delayed ACK would
        // add tens of milliseconds per question.
        writer.set_nodelay(true)?;
        writer.set_read_timeout(config.read_timeout)?;
        writer.set_write_timeout(config.write_timeout)?;
        let reader = BufReader::new(writer.try_clone()?);
        let mut client = Client {
            reader,
            writer,
            greeting: Reply {
                head: String::new(),
                body: Vec::new(),
            },
        };
        client.greeting = client.read_reply()?;
        Ok(client)
    }

    /// The greeting frame the server sent on connect.
    pub fn greeting(&self) -> &Reply {
        &self.greeting
    }

    /// Sends one command line and reads the framed reply.
    pub fn send(&mut self, line: &str) -> std::io::Result<Reply> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_reply()
    }

    /// Sends an `INGEST` batch (command line + row lines) and reads the
    /// reply.
    pub fn ingest(&mut self, rows: &[IngestRow]) -> std::io::Result<Reply> {
        let mut batch = format!("INGEST {}\n", rows.len());
        for r in rows {
            batch.push_str(&r.render());
            batch.push('\n');
        }
        self.writer.write_all(batch.as_bytes())?;
        self.writer.flush()?;
        self.read_reply()
    }

    /// Half-closes the write side (the server sees EOF); any buffered
    /// replies can still be drained with [`Client::drain`].
    pub fn finish_writes(&mut self) -> std::io::Result<()> {
        self.writer.shutdown(std::net::Shutdown::Write)
    }

    /// Reads everything until the server closes the connection.
    pub fn drain(&mut self) -> std::io::Result<String> {
        let mut rest = String::new();
        self.reader.read_to_string(&mut rest)?;
        Ok(rest)
    }

    /// Writes raw bytes (for protocol-fuzzing tests).
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }

    /// Reads one framed reply without sending anything first — for tests
    /// that drive the wire with [`Client::send_raw`] and for replies the
    /// server initiates (e.g. `ERR timeout` on an expired deadline).
    pub fn read_reply_frame(&mut self) -> std::io::Result<Reply> {
        self.read_reply()
    }

    fn read_reply(&mut self) -> std::io::Result<Reply> {
        let mut head = String::new();
        if self.reader.read_line(&mut head)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before a reply head line",
            ));
        }
        let head = head.trim_end().to_string();
        let mut body = Vec::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed inside a reply frame",
                ));
            }
            let line = line.trim_end();
            if line == "." {
                return Ok(Reply { head, body });
            }
            body.push(line.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_fields_parse() {
        let r = Reply {
            head: "OK metrics epoch 3".into(),
            body: vec!["anchor_total 120".into(), "recall 0.812500".into()],
        };
        assert!(r.is_ok());
        assert_eq!(r.field("epoch"), Some("3"));
        assert_eq!(r.field("metrics"), Some("epoch"));
        assert_eq!(r.field("nope"), None);
        assert_eq!(r.body_field("anchor_total"), Some("120"));
        assert_eq!(r.body_field("recall"), Some("0.812500"));
        assert_eq!(r.body_field("anchor"), None, "whole-key match only");
        assert_eq!(
            r.render(),
            "OK metrics epoch 3\nanchor_total 120\nrecall 0.812500"
        );
    }
}
