//! The `eba-serve` line protocol: command grammar, typed errors, and the
//! uniformly framed reply.
//!
//! # Framing
//!
//! Requests are single `\n`-terminated ASCII lines (`\r\n` tolerated):
//! a case-insensitive command keyword followed by space-separated
//! arguments. Blank lines and lines starting with `#` are ignored, so the
//! protocol is comfortable to drive from `nc`.
//!
//! Every reply — success or error — has the same frame: a head line
//! beginning with `OK` or `ERR`, zero or more data lines, and a
//! terminating line containing a single `.`. Data lines always begin with
//! a lowercase keyword (never `.`), so a client reads until the lone dot
//! and never needs per-command framing knowledge.
//!
//! # Commands
//!
//! ```text
//! PING                    liveness probe
//! PIN                     report the session's pinned epoch seq
//! REPIN                   pin the latest published epoch
//! SEQ                     published vs pinned sequence numbers
//! SHARDS                  shard count, live seq, per-shard log row counts
//! EXPLAIN <lid>           ranked explanations for one access
//! UNEXPLAINED [limit [AFTER <rid>]]
//!                         the unexplained accesses of the pinned epoch;
//!                         a truncated page names a cursor (`next
//!                         UNEXPLAINED <limit> AFTER <rid>`) that fetches
//!                         the following page in O(limit)
//! METRICS                 suite-level explanation metrics
//! TIMELINE                per-day stats, incl. the clock-skew overflow bucket
//! MISUSE [user]           one user's triage entry, or the top of the queue
//! INGEST <n>              n rows follow, one per line: <user> <patient> <day|->
//! SUBSCRIBE UNEXPLAINED   switch to event mode: one `EVENT unexplained`
//!                         frame per publish that adds unexplained accesses
//! SUBSCRIBE MISUSE <t>    event mode: one `EVENT misuse` frame per user
//!                         whose unexplained count crosses `t` in a publish
//! WARNINGS                operator warnings recorded so far (rebuild fallbacks)
//! RECOVERY                what startup recovery replayed from the durable store
//! QUIT                    close the session
//! ```
//!
//! # Event mode
//!
//! After `OK subscribed …`, the server initiates frames: each pushed
//! event is dot-framed exactly like a reply but with an `EVENT …` head
//! line, so [`crate::Client::read_reply_frame`] parses it unchanged. A
//! subscribed session accepts only `QUIT` (answered `OK bye`, then
//! close); its pinned epoch no longer matters — events always describe
//! the epoch that published them. Every subscriber owns a bounded event
//! queue; one that stops reading is **shed**: it receives its queued
//! backlog, then one `ERR slow-consumer` frame, and the connection
//! closes. Shedding never stalls the writer or other subscribers.
//!
//! `INGEST` is the single-writer path: the batch goes through
//! [`SharedEngine::ingest`](eba_relational::SharedEngine::ingest) and the
//! reply carries the published seq plus the rebuild-fallback flag. All
//! other commands answer from the session's pinned epoch, so a long audit
//! sees one consistent snapshot until it chooses to `REPIN`.
//!
//! # Errors
//!
//! `ERR <code> <message>` with codes `bad-request` (parse/argument
//! errors), `not-found` (lookups), `timeout` (the session idled past the
//! configured socket deadline — sent once, then the connection closes),
//! `busy` (the server is at its connection cap; sent in greeting
//! position, then the connection closes — carries a `retry-after-ms`
//! hint), `toolong` (a request line over the frame cap — sent once, then
//! close — or an `INGEST` count over the batch cap, rejected *before*
//! any row line is read; the session stays usable), `overloaded` (the
//! single-writer ingest path is saturated; the batch was shed — nothing
//! read, nothing published — and the reply carries a `retry-after-ms`
//! hint; read commands never shed), `persist` (an `INGEST` could not be
//! made durable; **nothing was published** — retry after the operator
//! fixes the disk), and `internal` (a recovered panic — the connection
//! and the service both survive it).

use std::fmt;
use std::io::Write;

/// Upper bound on one `INGEST` batch, so a malformed count cannot make
/// the server buffer unbounded input.
pub const MAX_INGEST_BATCH: usize = 100_000;

/// The `retry-after-ms` hint attached to an `ERR busy` rejection: how
/// long a shed connection should wait before reconnecting. Sessions turn
/// over on human timescales, so a fixed second is an honest hint.
pub const BUSY_RETRY_AFTER_MS: u64 = 1_000;

/// Ceiling on the `ERR overloaded` retry hint. Queue depth is a noisy
/// instantaneous reading — a momentary spike of hundreds of in-flight
/// batches must not tell clients to stall for minutes.
pub const OVERLOAD_RETRY_CAP_MS: u64 = 10_000;

/// The `retry-after-ms` hint for an `ERR overloaded` shed, scaled by how
/// deep the writer queue was when the batch was refused: each in-flight
/// ingest ahead of the client is worth ~100 ms of writer time, capped at
/// [`OVERLOAD_RETRY_CAP_MS`].
pub fn overload_retry_after_ms(in_flight: usize) -> u64 {
    100u64
        .saturating_mul(in_flight.max(1) as u64)
        .min(OVERLOAD_RETRY_CAP_MS)
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `PING` — liveness probe.
    Ping,
    /// `PIN` — report the pinned epoch without changing it.
    Pin,
    /// `REPIN` — pin the latest published epoch.
    Repin,
    /// `SEQ` — published vs pinned sequence numbers.
    Seq,
    /// `SHARDS` — shard count, live seq, and per-shard log row counts of
    /// the pinned epoch vector.
    Shards,
    /// `EXPLAIN <lid>` — ranked explanations for one access.
    Explain { lid: i64 },
    /// `UNEXPLAINED [limit [AFTER <rid>]]` — unexplained accesses,
    /// optionally truncated to one page starting past a cursor.
    Unexplained {
        /// Page size (`None`: the full listing).
        limit: Option<usize>,
        /// Resume after this **global** row id (the cursor a truncated
        /// page names in its `next …` line).
        after: Option<u32>,
    },
    /// `METRICS` — suite-level explanation metrics over the pinned epoch.
    Metrics,
    /// `TIMELINE` — per-day stats plus the overflow bucket.
    Timeline,
    /// `MISUSE [user]` — one user's triage entry or the top of the queue.
    Misuse { user: Option<i64> },
    /// `INGEST <n>` — `n` rows follow on continuation lines.
    Ingest { count: usize },
    /// `SUBSCRIBE …` — switch the session into event mode.
    Subscribe {
        /// What to be notified about.
        kind: crate::push::SubscriptionKind,
    },
    /// `WARNINGS` — operator warnings recorded so far (every rebuild
    /// fallback, whether triggered by an `INGEST` or an operator
    /// database reload).
    Warnings,
    /// `RECOVERY` — what startup recovery replayed from the durable
    /// store (or that the service is volatile).
    Recovery,
    /// `QUIT` — close the session.
    Quit,
}

impl Command {
    /// Parses one request line (already stripped of its terminator).
    /// Returns `Ok(None)` for blank and `#`-comment lines.
    pub fn parse(line: &str) -> Result<Option<Command>, ProtocolError> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        let mut words = line.split_whitespace();
        let keyword = words.next().expect("non-empty line").to_ascii_uppercase();
        let args: Vec<&str> = words.collect();
        let arity = |max: usize, usage: &'static str| -> Result<(), ProtocolError> {
            if args.len() > max {
                Err(ProtocolError::Usage(usage))
            } else {
                Ok(())
            }
        };
        let cmd = match keyword.as_str() {
            "PING" => {
                arity(0, "PING")?;
                Command::Ping
            }
            "PIN" => {
                arity(0, "PIN")?;
                Command::Pin
            }
            "REPIN" => {
                arity(0, "REPIN")?;
                Command::Repin
            }
            "SEQ" => {
                arity(0, "SEQ")?;
                Command::Seq
            }
            "SHARDS" => {
                arity(0, "SHARDS")?;
                Command::Shards
            }
            "EXPLAIN" => {
                arity(1, "EXPLAIN <lid>")?;
                let lid = args.first().ok_or(ProtocolError::Usage("EXPLAIN <lid>"))?;
                Command::Explain {
                    lid: parse_int(lid, "lid")?,
                }
            }
            "UNEXPLAINED" => {
                const USAGE: &str = "UNEXPLAINED [limit [AFTER <rid>]]";
                arity(3, USAGE)?;
                let limit = match args.first() {
                    None => None,
                    Some(v) => Some(parse_count(v, "limit")?),
                };
                let after = match args.get(1) {
                    None => None,
                    Some(kw) if kw.eq_ignore_ascii_case("AFTER") => {
                        let rid = args.get(2).ok_or(ProtocolError::Usage(USAGE))?;
                        let rid = parse_count(rid, "after rid")?;
                        Some(u32::try_from(rid).map_err(|_| ProtocolError::BadInt {
                            what: "after rid",
                            got: rid.to_string(),
                        })?)
                    }
                    Some(_) => return Err(ProtocolError::Usage(USAGE)),
                };
                if after.is_none() && args.len() > 1 {
                    return Err(ProtocolError::Usage(USAGE));
                }
                Command::Unexplained { limit, after }
            }
            "METRICS" => {
                arity(0, "METRICS")?;
                Command::Metrics
            }
            "TIMELINE" => {
                arity(0, "TIMELINE")?;
                Command::Timeline
            }
            "MISUSE" => {
                arity(1, "MISUSE [user]")?;
                let user = match args.first() {
                    None => None,
                    Some(v) => Some(parse_int(v, "user")?),
                };
                Command::Misuse { user }
            }
            "SUBSCRIBE" => {
                const USAGE: &str = "SUBSCRIBE UNEXPLAINED | SUBSCRIBE MISUSE <threshold>";
                arity(2, USAGE)?;
                let kind = args.first().ok_or(ProtocolError::Usage(USAGE))?;
                let kind = match kind.to_ascii_uppercase().as_str() {
                    "UNEXPLAINED" => {
                        if args.len() > 1 {
                            return Err(ProtocolError::Usage(USAGE));
                        }
                        crate::push::SubscriptionKind::Unexplained
                    }
                    "MISUSE" => {
                        let t = args.get(1).ok_or(ProtocolError::Usage(USAGE))?;
                        let threshold = parse_count(t, "threshold")?;
                        if threshold == 0 {
                            return Err(ProtocolError::Usage(USAGE));
                        }
                        crate::push::SubscriptionKind::Misuse { threshold }
                    }
                    _ => return Err(ProtocolError::Usage(USAGE)),
                };
                Command::Subscribe { kind }
            }
            "INGEST" => {
                arity(1, "INGEST <n>")?;
                let n = args.first().ok_or(ProtocolError::Usage("INGEST <n>"))?;
                let count = parse_count(n, "row count")?;
                if count == 0 || count > MAX_INGEST_BATCH {
                    return Err(ProtocolError::BatchSize {
                        got: count,
                        max: MAX_INGEST_BATCH,
                    });
                }
                Command::Ingest { count }
            }
            "WARNINGS" => {
                arity(0, "WARNINGS")?;
                Command::Warnings
            }
            "RECOVERY" => {
                arity(0, "RECOVERY")?;
                Command::Recovery
            }
            "QUIT" => {
                arity(0, "QUIT")?;
                Command::Quit
            }
            other => return Err(ProtocolError::UnknownCommand(other.to_string())),
        };
        Ok(Some(cmd))
    }
}

fn parse_int(s: &str, what: &'static str) -> Result<i64, ProtocolError> {
    s.parse().map_err(|_| ProtocolError::BadInt {
        what,
        got: s.to_string(),
    })
}

fn parse_count(s: &str, what: &'static str) -> Result<usize, ProtocolError> {
    s.parse().map_err(|_| ProtocolError::BadInt {
        what,
        got: s.to_string(),
    })
}

/// One row of an `INGEST` batch: `<user> <patient> <day|->`.
///
/// `day` is the 1-based reporting day; `-` means the source had no usable
/// day stamp (it lands in the timeline's overflow bucket, like any other
/// clock-skewed day value).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestRow {
    /// Accessing user id.
    pub user: i64,
    /// Accessed patient id.
    pub patient: i64,
    /// 1-based day of the access, or `None` for a missing stamp.
    pub day: Option<i64>,
}

impl IngestRow {
    /// Parses one continuation line of an `INGEST` batch.
    pub fn parse(line: &str, index: usize) -> Result<IngestRow, ProtocolError> {
        let fields: Vec<&str> = line.split_whitespace().collect();
        let [user, patient, day] = fields.as_slice() else {
            return Err(ProtocolError::BadRow {
                index,
                reason: format!(
                    "expected `<user> <patient> <day|->`, got {} field(s)",
                    fields.len()
                ),
            });
        };
        let int = |s: &str, what: &str| -> Result<i64, ProtocolError> {
            s.parse().map_err(|_| ProtocolError::BadRow {
                index,
                reason: format!("{what} `{s}` is not an integer"),
            })
        };
        Ok(IngestRow {
            user: int(user, "user")?,
            patient: int(patient, "patient")?,
            day: if *day == "-" {
                None
            } else {
                Some(int(day, "day")?)
            },
        })
    }

    /// The wire form [`IngestRow::parse`] accepts.
    pub fn render(&self) -> String {
        match self.day {
            Some(d) => format!("{} {} {}", self.user, self.patient, d),
            None => format!("{} {} -", self.user, self.patient),
        }
    }
}

/// Typed protocol-level failures; every variant renders as one
/// `ERR <code> <message>` head line. No panic reaches the socket: the
/// session layer converts recovered panics to [`ProtocolError::Internal`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The command keyword is not part of the grammar.
    UnknownCommand(String),
    /// Wrong argument shape; carries the usage string.
    Usage(&'static str),
    /// An argument that must be an integer was not.
    BadInt {
        /// What the argument denotes.
        what: &'static str,
        /// The offending token.
        got: String,
    },
    /// An `INGEST` batch size outside `1..=MAX_INGEST_BATCH`.
    BatchSize {
        /// The requested count.
        got: usize,
        /// The allowed maximum.
        max: usize,
    },
    /// A malformed `INGEST` continuation line.
    BadRow {
        /// 0-based row index within the batch.
        index: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// The connection ended mid-`INGEST` batch.
    TruncatedBatch {
        /// Rows received before the stream ended.
        got: usize,
        /// Rows announced.
        expected: usize,
    },
    /// A request line exceeded the session's frame cap; the reply is
    /// sent once and the connection is closed (the overlong tail is
    /// never buffered).
    LineTooLong {
        /// The configured cap, in bytes.
        max: usize,
    },
    /// A lookup found nothing (e.g. an unknown lid).
    NotFound(String),
    /// The session sat past its socket deadline; the reply is sent once
    /// and the connection is closed.
    Timeout {
        /// The configured deadline, in seconds.
        seconds: u64,
    },
    /// The server is at its connection cap. Sent in greeting position to
    /// the excess connection, which is then closed — a typed refusal,
    /// never a silent drop.
    Busy {
        /// Open sessions at the moment of refusal.
        live: usize,
        /// The configured cap.
        max: usize,
    },
    /// The single-writer ingest path is saturated; this batch was shed
    /// before any row line was read. Nothing was published and nothing
    /// is durable — the client retries after the hint. Read commands
    /// are never shed.
    Overloaded {
        /// Ingests already in flight (writing or waiting) when the
        /// batch was refused.
        in_flight: usize,
    },
    /// An `INGEST` batch could not be made durable. Nothing was
    /// published: the acknowledged history is still a prefix of the
    /// durable one, and the client may retry.
    Persist(String),
    /// A subscriber stopped draining its bounded event queue and was
    /// shed. Sent once (after the queued backlog delivered), then the
    /// connection closes; resubscribing starts a fresh feed.
    SlowConsumer {
        /// Frames that were undelivered when the queue overflowed.
        queued: usize,
    },
    /// A recovered panic; the session keeps serving.
    Internal(String),
}

impl ProtocolError {
    /// The machine-readable error code of the `ERR` head line.
    pub fn code(&self) -> &'static str {
        match self {
            ProtocolError::UnknownCommand(_)
            | ProtocolError::Usage(_)
            | ProtocolError::BadInt { .. }
            | ProtocolError::BadRow { .. }
            | ProtocolError::TruncatedBatch { .. } => "bad-request",
            // A zero-row batch is malformed; an oversized one is a
            // resource-limit refusal, same family as an overlong line.
            ProtocolError::BatchSize { got: 0, .. } => "bad-request",
            ProtocolError::BatchSize { .. } | ProtocolError::LineTooLong { .. } => "toolong",
            ProtocolError::NotFound(_) => "not-found",
            ProtocolError::Timeout { .. } => "timeout",
            ProtocolError::Busy { .. } => "busy",
            ProtocolError::Overloaded { .. } => "overloaded",
            ProtocolError::Persist(_) => "persist",
            ProtocolError::SlowConsumer { .. } => "slow-consumer",
            ProtocolError::Internal(_) => "internal",
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::UnknownCommand(kw) => write!(f, "unknown command `{kw}`"),
            ProtocolError::Usage(usage) => write!(f, "usage: {usage}"),
            ProtocolError::BadInt { what, got } => {
                write!(f, "{what} `{got}` is not an integer")
            }
            ProtocolError::BatchSize { got, max } => {
                write!(f, "ingest batch of {got} rows outside 1..={max}")
            }
            ProtocolError::BadRow { index, reason } => {
                write!(f, "ingest row {index}: {reason}")
            }
            ProtocolError::TruncatedBatch { got, expected } => {
                write!(f, "connection closed after {got} of {expected} ingest rows")
            }
            ProtocolError::LineTooLong { max } => {
                write!(f, "request line exceeds the {max}-byte frame cap; closing")
            }
            ProtocolError::NotFound(what) => write!(f, "{what}"),
            ProtocolError::Timeout { seconds } => {
                write!(f, "session idle past the {seconds}s limit; closing")
            }
            ProtocolError::Busy { live, max } => {
                write!(
                    f,
                    "connection cap reached ({live} live / max {max}); \
                     retry-after-ms {BUSY_RETRY_AFTER_MS}"
                )
            }
            ProtocolError::Overloaded { in_flight } => {
                write!(
                    f,
                    "ingest writer saturated ({in_flight} batch(es) in flight); \
                     batch shed, nothing published; retry-after-ms {}",
                    overload_retry_after_ms(*in_flight)
                )
            }
            ProtocolError::Persist(what) => {
                write!(f, "batch not durable, nothing published: {what}")
            }
            ProtocolError::SlowConsumer { queued } => {
                write!(
                    f,
                    "event queue overflowed ({queued} frames undelivered); \
                     subscription shed, resubscribe for a fresh feed"
                )
            }
            ProtocolError::Internal(what) => write!(f, "recovered internal panic: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// One framed reply: the `OK`/`ERR` head line plus data lines, written
/// with the terminating `.`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The head line (starts with `OK` or `ERR`).
    pub head: String,
    /// Data lines (each begins with a lowercase keyword, never `.`).
    pub body: Vec<String>,
}

impl Response {
    /// A success reply; `head` is appended to `OK `.
    pub fn ok(head: impl Into<String>) -> Response {
        Response {
            head: format!("OK {}", head.into()),
            body: Vec::new(),
        }
    }

    /// An error reply.
    pub fn err(e: &ProtocolError) -> Response {
        Response {
            head: format!("ERR {} {e}", e.code()),
            body: Vec::new(),
        }
    }

    /// Appends one data line.
    pub fn push(&mut self, line: impl Into<String>) {
        let line = line.into();
        debug_assert!(!line.starts_with('.'), "data lines must not start with '.'");
        self.body.push(line);
    }

    /// Whether the head line reports success.
    pub fn is_ok(&self) -> bool {
        self.head.starts_with("OK")
    }

    /// Writes the framed reply (head, body, `.`) and flushes.
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let mut out = String::with_capacity(self.head.len() + 2 + 16 * self.body.len());
        out.push_str(&self.head);
        out.push('\n');
        for line in &self.body {
            out.push_str(line);
            out.push('\n');
        }
        out.push_str(".\n");
        w.write_all(out.as_bytes())?;
        w.flush()
    }
}

impl From<ProtocolError> for Response {
    fn from(e: ProtocolError) -> Response {
        Response::err(&e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_parse_case_insensitively() {
        assert_eq!(Command::parse("ping").unwrap(), Some(Command::Ping));
        assert_eq!(Command::parse("  PiNg  ").unwrap(), Some(Command::Ping));
        assert_eq!(Command::parse("REPIN").unwrap(), Some(Command::Repin));
        assert_eq!(
            Command::parse("explain 42").unwrap(),
            Some(Command::Explain { lid: 42 })
        );
        assert_eq!(
            Command::parse("UNEXPLAINED").unwrap(),
            Some(Command::Unexplained {
                limit: None,
                after: None
            })
        );
        assert_eq!(
            Command::parse("UNEXPLAINED 5").unwrap(),
            Some(Command::Unexplained {
                limit: Some(5),
                after: None
            })
        );
        assert_eq!(
            Command::parse("unexplained 5 after 41").unwrap(),
            Some(Command::Unexplained {
                limit: Some(5),
                after: Some(41)
            })
        );
        assert_eq!(
            Command::parse("SUBSCRIBE unexplained").unwrap(),
            Some(Command::Subscribe {
                kind: crate::push::SubscriptionKind::Unexplained
            })
        );
        assert_eq!(
            Command::parse("subscribe MISUSE 3").unwrap(),
            Some(Command::Subscribe {
                kind: crate::push::SubscriptionKind::Misuse { threshold: 3 }
            })
        );
        assert_eq!(
            Command::parse("MISUSE -3").unwrap(),
            Some(Command::Misuse { user: Some(-3) })
        );
        assert_eq!(
            Command::parse("ingest 10").unwrap(),
            Some(Command::Ingest { count: 10 })
        );
        assert_eq!(Command::parse("warnings").unwrap(), Some(Command::Warnings));
    }

    #[test]
    fn blank_and_comment_lines_are_skipped() {
        assert_eq!(Command::parse("").unwrap(), None);
        assert_eq!(Command::parse("   \t ").unwrap(), None);
        assert_eq!(Command::parse("# a comment").unwrap(), None);
    }

    #[test]
    fn malformed_lines_yield_typed_errors() {
        assert!(matches!(
            Command::parse("FROB").unwrap_err(),
            ProtocolError::UnknownCommand(_)
        ));
        assert!(matches!(
            Command::parse("EXPLAIN").unwrap_err(),
            ProtocolError::Usage("EXPLAIN <lid>")
        ));
        assert!(matches!(
            Command::parse("EXPLAIN twelve").unwrap_err(),
            ProtocolError::BadInt { what: "lid", .. }
        ));
        assert!(matches!(
            Command::parse("PING extra").unwrap_err(),
            ProtocolError::Usage("PING")
        ));
        assert!(matches!(
            Command::parse("INGEST 0").unwrap_err(),
            ProtocolError::BatchSize { got: 0, .. }
        ));
        assert!(matches!(
            Command::parse(&format!("INGEST {}", MAX_INGEST_BATCH + 1)).unwrap_err(),
            ProtocolError::BatchSize { .. }
        ));
        let err = Command::parse("MISUSE 1 2").unwrap_err();
        assert_eq!(err.code(), "bad-request");
        // The pagination cursor needs both the keyword and the rid — and
        // a limit to resume from; a bare AFTER is malformed.
        for bad in [
            "UNEXPLAINED 5 AFTER",
            "UNEXPLAINED 5 BEFORE 3",
            "UNEXPLAINED 5 3",
            "UNEXPLAINED 5 AFTER x",
            "UNEXPLAINED 5 AFTER -1",
        ] {
            assert_eq!(
                Command::parse(bad).unwrap_err().code(),
                "bad-request",
                "{bad}"
            );
        }
        for bad in [
            "SUBSCRIBE",
            "SUBSCRIBE METRICS",
            "SUBSCRIBE MISUSE",
            "SUBSCRIBE MISUSE 0",
            "SUBSCRIBE MISUSE x",
            "SUBSCRIBE UNEXPLAINED 3",
        ] {
            assert_eq!(
                Command::parse(bad).unwrap_err().code(),
                "bad-request",
                "{bad}"
            );
        }
        assert_eq!(
            ProtocolError::SlowConsumer { queued: 64 }.code(),
            "slow-consumer"
        );
    }

    #[test]
    fn overload_errors_carry_typed_codes_and_retry_hints() {
        // A zero batch is malformed; an oversized one is a limit refusal.
        assert_eq!(
            ProtocolError::BatchSize { got: 0, max: 10 }.code(),
            "bad-request"
        );
        assert_eq!(
            ProtocolError::BatchSize { got: 11, max: 10 }.code(),
            "toolong"
        );
        assert_eq!(ProtocolError::LineTooLong { max: 4096 }.code(), "toolong");
        let busy = ProtocolError::Busy { live: 64, max: 64 };
        assert_eq!(busy.code(), "busy");
        assert!(busy.to_string().contains("retry-after-ms"), "{busy}");
        let shed = ProtocolError::Overloaded { in_flight: 3 };
        assert_eq!(shed.code(), "overloaded");
        assert!(
            shed.to_string()
                .contains(&format!("retry-after-ms {}", overload_retry_after_ms(3))),
            "{shed}"
        );
        // The hint scales with queue depth but never reads zero.
        assert_eq!(overload_retry_after_ms(0), 100);
        assert!(overload_retry_after_ms(5) > overload_retry_after_ms(1));
        // ... and saturates at the cap instead of telling a client caught
        // behind a spike to stall for minutes.
        assert_eq!(overload_retry_after_ms(99), 9_900);
        assert_eq!(overload_retry_after_ms(100), OVERLOAD_RETRY_CAP_MS);
        assert_eq!(overload_retry_after_ms(1_000), OVERLOAD_RETRY_CAP_MS);
        assert_eq!(overload_retry_after_ms(usize::MAX), OVERLOAD_RETRY_CAP_MS);
        let head = Response::err(&shed).head;
        assert!(head.starts_with("ERR overloaded "), "{head}");
    }

    #[test]
    fn ingest_rows_round_trip() {
        for row in [
            IngestRow {
                user: 7,
                patient: 10001,
                day: Some(3),
            },
            IngestRow {
                user: 1,
                patient: 2,
                day: None,
            },
        ] {
            assert_eq!(IngestRow::parse(&row.render(), 0).unwrap(), row);
        }
        assert!(matches!(
            IngestRow::parse("1 2", 4).unwrap_err(),
            ProtocolError::BadRow { index: 4, .. }
        ));
        assert!(IngestRow::parse("1 x 3", 0).is_err());
    }

    #[test]
    fn responses_are_dot_framed() {
        let mut r = Response::ok("metrics epoch 0");
        r.push("anchor_total 10");
        let mut buf = Vec::new();
        r.write_to(&mut buf).unwrap();
        assert_eq!(
            String::from_utf8(buf).unwrap(),
            "OK metrics epoch 0\nanchor_total 10\n.\n"
        );
        assert!(r.is_ok());
        let e = Response::err(&ProtocolError::NotFound("no log record".into()));
        assert!(!e.is_ok());
        assert!(e.head.starts_with("ERR not-found "));
    }
}
