//! # eba-server
//!
//! `eba-serve`: the always-on audit service the paper frames — the access
//! log grows continuously while compliance officers and the patient
//! portal issue audit questions against it. The hard concurrency
//! substrate is [`eba_relational::ShardedEngine`] (the log hash-
//! partitioned by patient into `--shards N` engines, published together
//! as one atomically-swapped epoch vector); this crate wires a TCP
//! listener onto it:
//!
//! * **one session per connection**, thread-per-connection, std-only;
//! * **epoch-vector pinning per session**: a connection pins an
//!   [`EpochVec`](eba_relational::EpochVec) when it opens and every audit
//!   question ([`EXPLAIN`](protocol::Command::Explain),
//!   `UNEXPLAINED`, `METRICS`, `TIMELINE`, `MISUSE`) scatter-gathers
//!   across that frozen vector of shard snapshots — byte-stable no
//!   matter how many ingests land meanwhile, and byte-identical to one
//!   unsharded engine's answers — until the session says `REPIN`
//!   (`SHARDS` reports the partition layout);
//! * **a single-writer ingest path**: `INGEST` batches go through
//!   [`ShardedEngine::ingest`](eba_relational::ShardedEngine::ingest) —
//!   rows routed to their shard by the patient hash, every shard
//!   refreshed incrementally in parallel — and the reply carries the
//!   published seq and the rebuild-fallback flag (surfaced as a `warn`
//!   line, never silently dropped);
//! * **typed protocol errors and a panic barrier**: malformed input gets
//!   `ERR bad-request ...`; a panicking handler is recovered into
//!   `ERR internal ...` and the session keeps serving (PR 3's poison
//!   recovery guarantees the engine survives it);
//! * **opt-in durability**: [`AuditService::new_durable`] wires a
//!   [`DurableStore`] (segment pile + WAL,
//!   [`eba_relational::pile`]) into the ingest path — the batch is on
//!   disk *before* the epoch publishes, so an acknowledged `INGEST`
//!   survives a crash, and startup replays the store back into the
//!   engine (`RECOVERY` reports what was recovered);
//! * **graceful shutdown**: [`Server::shutdown`] stops the listener,
//!   unblocks in-flight sessions, and joins every thread.
//!
//! See [`protocol`] for the full command grammar and framing rules, and
//! the repository `README.md` for the same, prose-first.

pub mod client;
pub mod frame;
pub mod listener;
pub mod protocol;
pub mod push;
pub mod session;

pub use client::{Client, ClientConfig, Reply, RetryPolicy};
pub use frame::{BoundedLineReader, FrameLine};
pub use listener::{Server, ServerConfig};
pub use protocol::{Command, IngestRow, ProtocolError, Response};
pub use push::{Event, SubscriptionKind, EVENT_QUEUE_CAP, EVENT_ROWS_CAP};
pub use session::Session;

use eba_audit::handcrafted::HandcraftedTemplates;
use eba_audit::Explainer;
use eba_core::LogSpec;
use eba_relational::pile::{self, Durability, DurableStore, RecoveryReport};
use eba_relational::{
    Database, PileError, ShardKey, ShardedBatch, ShardedEngine, ShardedIngestReport, TableId, Value,
};
use eba_synth::LogColumns;
use std::collections::HashSet;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// The service's default shard count: `EBA_SHARDS` (or, for the test
/// harness, `EBA_TEST_SHARDS`) when set to a positive integer, else 1.
/// One shard is the exact unsharded engine — the `shard_equivalence`
/// suite proves the two indistinguishable — so sharding is pure opt-in.
pub fn default_shard_count() -> usize {
    for var in ["EBA_SHARDS", "EBA_TEST_SHARDS"] {
        if let Ok(v) = std::env::var(var) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
    }
    1
}

/// Default cap on concurrent `INGEST` batches (one writing + waiters)
/// before new batches are shed with `ERR overloaded`. Writers serialize
/// on the `ShardedEngine` writer lock, so queue depth is pure added
/// latency: beyond a few waiters, telling the client to come back later
/// beats making it wait out the whole queue against its own deadline.
pub const DEFAULT_INGEST_QUEUE: usize = 4;

/// Cap on the retained operator warning log: the service keeps serving
/// under a warning storm (every warning still reaches stderr) instead of
/// growing a `Vec` without bound for the life of the process.
const MAX_WARNINGS: usize = 1_000;

/// Everything the server shares across sessions: the snapshot-handoff
/// cell, the log layout, and the explanation suite.
pub struct AuditService {
    sharded: ShardedEngine,
    /// The engine-side pin id of the explanation suite: every published
    /// epoch vector carries the maintained anchors/explained/unexplained
    /// [`eba_relational::Maintained`] partition for it, so `UNEXPLAINED`
    /// and `METRICS` are O(delta)-maintained reads, not recomputations.
    pin_id: usize,
    /// The audit anchor (log table + lid/user/patient columns + filters).
    pub spec: LogSpec,
    /// The materialized log's column layout.
    pub cols: LogColumns,
    /// The template suite every session answers with.
    pub explainer: Explainer,
    /// The reporting window (1-based days) for `TIMELINE`.
    pub days: u32,
    warnings: Mutex<Vec<String>>,
    /// The `INGEST` writer's incremental state (next fresh `Lid`, pairs
    /// already seen) — without it every batch would rescan the whole log,
    /// making cumulative ingest cost quadratic in log size.
    writer_state: Mutex<Option<WriterState>>,
    /// The durable store every acknowledged `INGEST` is appended to
    /// (`None` for a volatile service). Locked only on the writer path,
    /// inside the `ShardedEngine` writer serialization.
    persist: Mutex<Option<DurableStore>>,
    /// What startup recovery replayed (set only by the durable
    /// constructors; surfaced by the `RECOVERY` command).
    recovery: Mutex<Option<RecoveryReport>>,
    /// `INGEST` batches currently inside the writer path (one holding
    /// the writer lock, the rest waiting on it) — the saturation gauge
    /// [`AuditService::try_ingest_rows`] sheds against.
    ingest_in_flight: AtomicUsize,
    /// Cap on `ingest_in_flight` before new batches are shed
    /// (0 = never shed). [`DEFAULT_INGEST_QUEUE`] by default; the
    /// listener applies `ServerConfig::max_ingest_queue` at spawn.
    max_ingest_queue: AtomicUsize,
    /// Batches shed so far (the overload counter the operator log and
    /// the bench's storm workload report).
    shed_ingests: AtomicU64,
    /// Live `SUBSCRIBE` registrations ([`push`]): each publish diffs the
    /// maintained unexplained set and enqueues typed events here.
    subscribers: Mutex<Vec<push::Subscriber>>,
    /// Subscription id source (ids are never reused, so a shed warning
    /// names a subscriber unambiguously for the life of the process).
    next_subscriber: AtomicU64,
    /// Subscribers shed as slow consumers since startup.
    shed_subscribers: AtomicU64,
}

/// Why [`AuditService::try_ingest_rows`] refused a batch.
#[derive(Debug)]
pub enum IngestRejected {
    /// The writer path is saturated: the batch was shed before doing any
    /// work. Nothing was published, nothing is durable; retry later.
    Overloaded {
        /// Batches already in flight when this one was refused.
        in_flight: usize,
    },
    /// The durable store refused the batch (same contract as
    /// [`AuditService::ingest_rows`]'s `Err`: nothing published).
    Persist(PileError),
}

/// RAII occupancy of the ingest-in-flight gauge: entering bumps the
/// gauge, dropping (on every exit path, shed ones included) restores it.
struct InflightSlot<'a> {
    gauge: &'a AtomicUsize,
    /// The gauge value *including* this slot, at entry.
    occupancy: usize,
}

impl<'a> InflightSlot<'a> {
    fn enter(gauge: &'a AtomicUsize) -> InflightSlot<'a> {
        let occupancy = gauge.fetch_add(1, Ordering::SeqCst) + 1;
        InflightSlot { gauge, occupancy }
    }
}

impl Drop for InflightSlot<'_> {
    fn drop(&mut self) {
        self.gauge.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Incrementally-maintained writer state. `log_len` is the published log
/// length the state was derived from: if it doesn't match (an ingest went
/// through [`ShardedEngine::ingest`] directly, or a publish failed after
/// the state advanced), the state is stale and gets rebuilt by one scan.
struct WriterState {
    next_lid: i64,
    seen: HashSet<(Value, Value)>,
    /// The **global** (cross-shard) log length the state was derived from.
    log_len: usize,
}

impl WriterState {
    fn scan(batch: &ShardedBatch, table: TableId, cols: &LogColumns) -> WriterState {
        let mut next_lid = 1;
        let mut seen = HashSet::new();
        for shard in 0..batch.shard_count() {
            let log = batch.db(shard).table(table);
            for (_, row) in log.iter() {
                if let Value::Int(i) = row[cols.lid] {
                    next_lid = next_lid.max(i + 1);
                }
                seen.insert((row[cols.user], row[cols.patient]));
            }
        }
        WriterState {
            next_lid,
            seen,
            log_len: batch.global_log_len(),
        }
    }
}

impl AuditService {
    /// Assembles a service over a database with [`default_shard_count`]
    /// shards. The initial epoch vector (seq 0) is built here — one full
    /// partition-and-snapshot pass.
    pub fn new(
        db: Database,
        spec: LogSpec,
        cols: LogColumns,
        explainer: Explainer,
        days: u32,
    ) -> AuditService {
        Self::new_sharded(db, spec, cols, explainer, days, default_shard_count())
    }

    /// [`AuditService::new`] with an explicit shard count (`--shards N`):
    /// the log is hash-partitioned by patient into `n_shards` engines
    /// published together as one epoch vector; every audit question
    /// scatter-gathers across them with answers byte-identical to one
    /// shard's.
    pub fn new_sharded(
        db: Database,
        spec: LogSpec,
        cols: LogColumns,
        explainer: Explainer,
        days: u32,
        n_shards: usize,
    ) -> AuditService {
        let key = ShardKey {
            table: spec.table,
            col: spec.patient_col,
        };
        let sharded = ShardedEngine::new(db, key, n_shards.max(1));
        // Pin the suite before the first session can connect: every epoch
        // this service ever publishes carries the maintained partition.
        let pin_id = sharded.pin_suite(explainer.suite_pin(&spec));
        AuditService {
            sharded,
            pin_id,
            spec,
            cols,
            explainer,
            days,
            warnings: Mutex::new(Vec::new()),
            writer_state: Mutex::new(None),
            persist: Mutex::new(None),
            recovery: Mutex::new(None),
            ingest_in_flight: AtomicUsize::new(0),
            max_ingest_queue: AtomicUsize::new(DEFAULT_INGEST_QUEUE),
            shed_ingests: AtomicU64::new(0),
            subscribers: Mutex::new(Vec::new()),
            next_subscriber: AtomicU64::new(1),
            shed_subscribers: AtomicU64::new(0),
        }
    }

    /// The engine pin id of the service's explanation suite — the key
    /// into [`eba_relational::EpochVec::maintained`] for the partition
    /// the `UNEXPLAINED`/`METRICS` fast paths read.
    pub fn pin_id(&self) -> usize {
        self.pin_id
    }

    /// Assembles a **durable** service: opens (creating if absent) the
    /// segment pile at `pile_path` and its WAL, replays every recovered
    /// batch into `db` *before* the initial epoch is built (one bulk
    /// insert pass, one engine build — the cold-start path `audit-bench`
    /// meters as `cold_start/recovery_replay`), and wires the store into
    /// the ingest path so every acknowledged `INGEST` is durable under
    /// `policy`.
    ///
    /// `db` must be the same base data the store was built over (the
    /// CSVs / synthetic seed from before any durable ingest) — a store
    /// whose row offsets don't line up is a typed
    /// [`PileError::BaseMismatch`], never a silently wrong log.
    ///
    /// Recovery drops (torn tails, discontinuities) become operator
    /// warnings immediately; the full report stays available through
    /// [`AuditService::recovery_report`] / the `RECOVERY` command.
    pub fn new_durable(
        db: Database,
        spec: LogSpec,
        cols: LogColumns,
        explainer: Explainer,
        days: u32,
        pile_path: &Path,
        policy: Durability,
    ) -> Result<AuditService, PileError> {
        Self::new_durable_sharded(
            db,
            spec,
            cols,
            explainer,
            days,
            pile_path,
            policy,
            default_shard_count(),
        )
    }

    /// [`AuditService::new_durable`] with an explicit shard count. The
    /// durable layout is shard-agnostic — one global pile/WAL recording
    /// batches in global row order — so the same store can be reopened
    /// with a *different* `--shards N` and recovery still reproduces the
    /// acknowledged log exactly: the replayed database is re-partitioned
    /// deterministically by the routing hash. `RECOVERY` reports how the
    /// recovered rows landed per shard.
    #[allow(clippy::too_many_arguments)]
    pub fn new_durable_sharded(
        mut db: Database,
        spec: LogSpec,
        cols: LogColumns,
        explainer: Explainer,
        days: u32,
        pile_path: &Path,
        policy: Durability,
        n_shards: usize,
    ) -> Result<AuditService, PileError> {
        let (store, batches, mut report) =
            DurableStore::open(pile_path, policy, pile::default_checkpoint_rows())?;
        pile::replay_into(&mut db, &batches)?;
        let days = days.max(days_in_log(&db, spec.table, &cols));
        let svc = Self::new_sharded(db, spec, cols, explainer, days, n_shards);
        for w in report.warnings() {
            svc.record_warning(w);
        }
        // Per-shard recovery accounting: where the recovered log landed
        // after deterministic re-partitioning.
        let epochs = svc.sharded.load();
        for (i, shard) in epochs.shards().iter().enumerate() {
            report
                .notes
                .push(format!("shard {i}: {} log rows", shard.log_len()));
        }
        *svc.persist.lock().unwrap_or_else(|e| e.into_inner()) = Some(store);
        *svc.recovery.lock().unwrap_or_else(|e| e.into_inner()) = Some(report);
        Ok(svc)
    }

    /// What startup recovery replayed, if this service is durable.
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.recovery
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Whether acknowledged ingests are persisted to a durable store.
    pub fn is_durable(&self) -> bool {
        self.persist
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some()
    }

    /// Appends an `INGEST` batch to the log through the single-writer
    /// path and publishes the successor epoch. Rows are materialized the
    /// way the fake-log injector builds them: fresh consecutive `Lid`s, a
    /// timestamp at midnight of the row's day (epoch 0 for a missing
    /// day), the interned `view` action, and `IsFirst` computed against
    /// the pairs already present.
    ///
    /// The lid/pair bookkeeping is maintained incrementally across
    /// batches (one log scan the first time, or after an out-of-band
    /// ingest made it stale), so a batch costs `O(batch)`, not `O(log)`.
    ///
    /// On a durable service the batch is appended to the store **before**
    /// the epoch is published ([`ShardedEngine::ingest_with`]'s ordering
    /// contract): an `Err` means nothing was published and nothing was
    /// acknowledged — the client may retry once the disk recovers (the
    /// writer's incremental state self-heals by rescanning).
    ///
    /// Panics only if the log schema rejects a constructed row (the
    /// CareWeb shape never does); a panic inside the ingest closure
    /// publishes nothing, and the session layer reports `ERR internal`.
    ///
    /// This library path always queues (it maintains the in-flight gauge
    /// but never sheds); the serving path uses
    /// [`AuditService::try_ingest_rows`], which sheds at the cap.
    pub fn ingest_rows(
        &self,
        rows: &[protocol::IngestRow],
    ) -> Result<ShardedIngestReport, PileError> {
        let _slot = InflightSlot::enter(&self.ingest_in_flight);
        self.ingest_rows_inner(rows)
    }

    /// [`AuditService::ingest_rows`] with graceful load shedding: when
    /// the writer path already has `max_ingest_queue` batches in flight
    /// (one writing + waiters), the batch is refused up front with
    /// [`IngestRejected::Overloaded`] — a cheap, typed refusal instead of
    /// an unbounded queue of sessions blocked on the writer lock. Reads
    /// are untouched: they answer from pinned epochs and never shed.
    pub fn try_ingest_rows(
        &self,
        rows: &[protocol::IngestRow],
    ) -> Result<ShardedIngestReport, IngestRejected> {
        let limit = self.max_ingest_queue.load(Ordering::SeqCst);
        let slot = InflightSlot::enter(&self.ingest_in_flight);
        if limit > 0 && slot.occupancy > limit {
            let in_flight = slot.occupancy - 1;
            let shed = self.shed_ingests.fetch_add(1, Ordering::SeqCst) + 1;
            // Power-of-two streak logging, same cadence as the accept
            // backoff: loud enough to see, quiet under a sustained storm.
            if shed.is_power_of_two() {
                self.record_warning(format!(
                    "ingest shed: writer saturated ({in_flight} batch(es) in flight, \
                     cap {limit}); {shed} shed so far"
                ));
            }
            return Err(IngestRejected::Overloaded { in_flight });
        }
        self.ingest_rows_inner(rows)
            .map_err(IngestRejected::Persist)
    }

    /// The ingest-queue cap ([`DEFAULT_INGEST_QUEUE`] unless configured;
    /// 0 = never shed).
    pub fn max_ingest_queue(&self) -> usize {
        self.max_ingest_queue.load(Ordering::SeqCst)
    }

    /// Reconfigures the ingest-queue cap (the listener applies
    /// `ServerConfig::max_ingest_queue` here at spawn).
    pub fn set_max_ingest_queue(&self, limit: usize) {
        self.max_ingest_queue.store(limit, Ordering::SeqCst);
    }

    /// `INGEST` batches currently inside the writer path.
    pub fn ingest_in_flight(&self) -> usize {
        self.ingest_in_flight.load(Ordering::SeqCst)
    }

    /// Batches shed with `ERR overloaded` since startup.
    pub fn shed_ingest_count(&self) -> u64 {
        self.shed_ingests.load(Ordering::SeqCst)
    }

    fn ingest_rows_inner(
        &self,
        rows: &[protocol::IngestRow],
    ) -> Result<ShardedIngestReport, PileError> {
        let mut guard = self.writer_state.lock().unwrap_or_else(|e| e.into_inner());
        // Publishes are serialized under the writer-state lock, so the
        // epoch loaded here is exactly the one this ingest succeeds: the
        // before/after diff feeding SUBSCRIBE events never skips or
        // double-counts a publish. Loaded only when someone is watching.
        let before = self.has_subscribers().then(|| self.sharded.load());
        let mut store = self.persist.lock().unwrap_or_else(|e| e.into_inner());
        let (_, report) = self.sharded.ingest_with(
            |batch| {
                // Validate the cached state against the writer's private
                // clones (same contents as the published epoch vector,
                // under the writer lock — no TOCTOU with other ingests).
                if guard
                    .as_ref()
                    .is_none_or(|s| s.log_len != batch.global_log_len())
                {
                    *guard = Some(WriterState::scan(batch, self.spec.table, &self.cols));
                }
                let state = guard.as_mut().expect("just ensured");
                let arity = batch.db(0).table(self.spec.table).schema().arity();
                let first_row = batch.global_log_len() as u64;
                // Materialize every row before inserting, so a mid-batch
                // insert panic cannot leave the state half-advanced.
                let mut staged = Vec::with_capacity(rows.len());
                let mut overlay: HashSet<(Value, Value)> = HashSet::new();
                for (offset, r) in rows.iter().enumerate() {
                    let user = Value::Int(r.user);
                    let patient = Value::Int(r.patient);
                    let is_first =
                        !state.seen.contains(&(user, patient)) && overlay.insert((user, patient));
                    let (day, date) = match r.day {
                        Some(d) => (Value::Int(d), Value::Date(d.max(0) * 24 * 60)),
                        None => (Value::Null, Value::Date(0)),
                    };
                    let mut row = vec![Value::Null; arity];
                    row[self.cols.lid] = Value::Int(state.next_lid + offset as i64);
                    row[self.cols.date] = date;
                    row[self.cols.user] = user;
                    row[self.cols.patient] = patient;
                    row[self.cols.day] = day;
                    row[self.cols.is_first] = Value::Int(i64::from(is_first));
                    staged.push(row);
                }
                let action = batch.str_value("view");
                for row in &mut staged {
                    row[self.cols.action] = action;
                    // Routed to its shard by the patient hash; the batch
                    // assigns the same global row id the unsharded log
                    // would, which is what the durable store records.
                    batch
                        .insert_log(row.clone())
                        .expect("ingest row matches the log schema");
                }
                // Commit the bookkeeping only once the whole batch is in.
                // (If the persist hook then refuses, the published log
                // length won't match `log_len` and the next ingest
                // rescans — the staleness guard self-heals the state.)
                let state = guard.as_mut().expect("still present");
                state.next_lid += rows.len() as i64;
                state.seen.extend(overlay);
                state.log_len = batch.global_log_len();
                (first_row, staged)
            },
            |batch, (first_row, staged), seq| {
                let Some(store) = store.as_mut() else {
                    return Ok(());
                };
                // Shard-agnostic durable layout: one pile, batches in
                // global row order. Any shard's database resolves the
                // staged symbols (the pools are aligned by construction).
                let db = batch.db(0);
                let table = &db.table(self.spec.table).schema().name;
                store.append(pile::plain_batch(db, seq, table, *first_row, staged))
            },
        )?;
        if let Some(before) = before {
            self.publish_events(&before, &self.sharded.load());
        }
        Ok(report)
    }

    /// A tiny synthetic-hospital service with the hand-crafted template
    /// suite — the zero-setup constructor the `eba-serve` binary, the
    /// unit tests, and the benchmark workload share.
    pub fn tiny_synthetic(seed: u64) -> AuditService {
        Self::tiny_synthetic_sharded(seed, default_shard_count())
    }

    /// [`AuditService::tiny_synthetic`] with an explicit shard count.
    pub fn tiny_synthetic_sharded(seed: u64, n_shards: usize) -> AuditService {
        let config = eba_synth::SynthConfig {
            seed,
            ..eba_synth::SynthConfig::tiny()
        };
        Self::from_hospital_sharded(eba_synth::Hospital::generate(config), n_shards)
    }

    /// Wraps a generated hospital with the hand-crafted suite.
    pub fn from_hospital(h: eba_synth::Hospital) -> AuditService {
        Self::from_hospital_sharded(h, default_shard_count())
    }

    /// [`AuditService::from_hospital`] with an explicit shard count.
    pub fn from_hospital_sharded(h: eba_synth::Hospital, n_shards: usize) -> AuditService {
        let spec = LogSpec::conventional(&h.db).expect("synthetic Log table");
        let t = HandcraftedTemplates::build(&h.db, &spec).expect("CareWeb schema");
        let explainer = Explainer::new(t.all().into_iter().cloned().collect());
        let cols = h.log_cols;
        let days = h.config.days;
        Self::new_sharded(h.db, spec, cols, explainer, days, n_shards)
    }

    /// [`AuditService::from_hospital`] with a durable store: previously
    /// acknowledged ingests are recovered from `pile_path` (same seed ⇒
    /// same base data ⇒ the store's row offsets line up) and every new
    /// acknowledged `INGEST` is persisted under `policy`.
    pub fn from_hospital_durable(
        h: eba_synth::Hospital,
        pile_path: &Path,
        policy: Durability,
    ) -> Result<AuditService, PileError> {
        Self::from_hospital_durable_sharded(h, pile_path, policy, default_shard_count())
    }

    /// [`AuditService::from_hospital_durable`] with an explicit shard
    /// count — the store layout is shard-agnostic, so any count works
    /// over an existing pile.
    pub fn from_hospital_durable_sharded(
        h: eba_synth::Hospital,
        pile_path: &Path,
        policy: Durability,
        n_shards: usize,
    ) -> Result<AuditService, PileError> {
        let spec = LogSpec::conventional(&h.db).expect("synthetic Log table");
        let t = HandcraftedTemplates::build(&h.db, &spec).expect("CareWeb schema");
        let explainer = Explainer::new(t.all().into_iter().cloned().collect());
        let cols = h.log_cols;
        let days = h.config.days;
        Self::new_durable_sharded(
            h.db, spec, cols, explainer, days, pile_path, policy, n_shards,
        )
    }

    /// The sharded snapshot-handoff cell (readers `load` the epoch
    /// vector, the writer `ingest`s).
    pub fn sharded(&self) -> &ShardedEngine {
        &self.sharded
    }

    /// Number of log shards this service partitions across.
    pub fn shard_count(&self) -> usize {
        self.sharded.shard_count()
    }

    /// Operator reload: replaces the published database wholesale (e.g. a
    /// corrected dataset) and publishes the successor epoch via
    /// [`ShardedEngine::replace`] — every shard engine is rebuilt from scratch
    /// unconditionally (a replacement is never assumed to extend the
    /// published log, even when row counts line up), and the rebuild is
    /// recorded as an operator warning (surfaced by the `WARNINGS`
    /// command) exactly like an `INGEST`-path fallback, never silently
    /// absorbed. Pinned sessions keep answering from their epoch until
    /// they `REPIN`.
    pub fn replace_database(&self, db: Database) -> ShardedIngestReport {
        // Serialize with `ingest_rows` and drop its incremental lid/pair
        // state: it described the replaced log.
        let mut guard = self.writer_state.lock().unwrap_or_else(|e| e.into_inner());
        *guard = None;
        let report = self.sharded.replace(db);
        drop(guard);
        for warning in report.fallback_warnings() {
            self.record_warning(warning);
        }
        report
    }

    /// Rebuild-fallback warnings recorded so far (oldest first) — the
    /// operator-facing trail of every `INGEST` that had to fall back to a
    /// full rebuild.
    pub fn warnings(&self) -> Vec<String> {
        lock_plain(&self.warnings).clone()
    }

    /// Records an operator warning (also mirrored to stderr). The
    /// retained log is capped at 1 000 entries — the cap itself is
    /// recorded once, and later warnings still reach stderr — so a
    /// warning storm cannot grow process memory without bound.
    pub fn record_warning(&self, warning: String) {
        eprintln!("eba-serve: warning: {warning}");
        let mut warnings = lock_plain(&self.warnings);
        match warnings.len().cmp(&MAX_WARNINGS) {
            std::cmp::Ordering::Less => warnings.push(warning),
            std::cmp::Ordering::Equal => warnings.push(format!(
                "warning log capped at {MAX_WARNINGS} entries; \
                 further warnings go to stderr only"
            )),
            std::cmp::Ordering::Greater => {}
        }
    }
}

/// Locks a plain-state mutex, recovering a poisoned guard (warnings and
/// the subscriber list are both append/retain lists a panicking holder
/// cannot leave torn).
pub(crate) fn lock_plain<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Resolves the CareWeb log column layout from a log table's schema — the
/// bridge a CSV-loaded deployment needs between [`LogSpec`] (which knows
/// lid/user/patient) and the timeline's extra derived columns.
pub fn log_columns(db: &Database, log: TableId) -> LogColumns {
    let schema = db.table(log).schema();
    let col = |name: &str| schema.col(name).expect("CareWeb log column");
    LogColumns {
        lid: col("Lid"),
        date: col("Date"),
        user: col("User"),
        patient: col("Patient"),
        action: col("Action"),
        day: col("Day"),
        is_first: col("IsFirst"),
    }
}

/// The reporting window implied by a log: the maximum in-range `Day`
/// value (at least 1). Rows with absurd or missing days don't widen the
/// window — they are exactly what the overflow bucket is for.
pub fn days_in_log(db: &Database, log: TableId, cols: &LogColumns) -> u32 {
    db.table(log)
        .iter()
        .filter_map(|(_, row)| match row[cols.day] {
            Value::Int(d) if (1..=3_650).contains(&d) => Some(d as u32),
            _ => None,
        })
        .max()
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_service_builds_and_serves_an_epoch() {
        let svc = AuditService::tiny_synthetic(1);
        let epochs = svc.sharded().load();
        assert_eq!(epochs.seq(), 0);
        assert!(epochs.global_log_len() > 0);
        assert_eq!(
            epochs
                .shards()
                .iter()
                .map(|s| s.db().table(svc.spec.table).len())
                .sum::<usize>(),
            epochs.global_log_len()
        );
        assert!(!svc.explainer.templates().is_empty());
        assert!(svc.days >= 1);
        assert!(svc.warnings().is_empty());
    }

    #[test]
    fn shard_count_follows_the_explicit_request() {
        let svc = AuditService::tiny_synthetic_sharded(1, 3);
        assert_eq!(svc.shard_count(), 3);
        let epochs = svc.sharded().load();
        assert_eq!(epochs.shard_count(), 3);
        assert_eq!(
            epochs.shards().iter().map(|s| s.log_len()).sum::<usize>(),
            epochs.global_log_len(),
            "shards partition the log"
        );
    }

    #[test]
    fn writer_state_survives_out_of_band_ingests() {
        use crate::protocol::IngestRow;
        let svc = AuditService::tiny_synthetic(2);
        let row = |u: i64, p: i64| IngestRow {
            user: u,
            patient: p,
            day: Some(1),
        };
        // Two protocol batches build up the incremental writer state.
        svc.ingest_rows(&[row(1, 10_000), row(1, 10_000)]).unwrap();
        svc.ingest_rows(&[row(2, 10_001)]).unwrap();
        // An out-of-band ingest bypasses the cache entirely and plants a
        // high lid the cache knows nothing about.
        let table = svc.spec.table;
        let cols = svc.cols;
        svc.sharded().ingest(|batch| {
            let arity = batch.db(0).table(table).schema().arity();
            let mut r = vec![Value::Null; arity];
            r[cols.lid] = Value::Int(5_000_000);
            r[cols.date] = Value::Date(0);
            r[cols.user] = Value::Int(9);
            r[cols.patient] = Value::Int(10_001);
            r[cols.day] = Value::Int(1);
            r[cols.is_first] = Value::Int(0);
            batch.insert_log(r).unwrap();
        });
        // The staleness check (published log length moved under the
        // cache) forces a rescan: no lid may ever be issued twice.
        svc.ingest_rows(&[row(3, 10_002)]).unwrap();
        let epochs = svc.sharded().load();
        let mut lids = std::collections::HashSet::new();
        for shard in epochs.shards() {
            for (_, r) in shard.db().table(table).iter() {
                assert!(lids.insert(r[cols.lid]), "duplicate lid: {:?}", r[cols.lid]);
            }
        }
        assert!(
            lids.contains(&Value::Int(5_000_001)),
            "fresh lids continue above the out-of-band maximum"
        );
    }

    #[test]
    fn durable_service_recovers_acknowledged_ingests() {
        let pile =
            std::env::temp_dir().join(format!("eba-durable-lib-test-{}.pile", std::process::id()));
        let _ = std::fs::remove_file(&pile);
        let _ = std::fs::remove_file(DurableStore::wal_path(&pile));
        let hospital = |seed| {
            eba_synth::Hospital::generate(eba_synth::SynthConfig {
                seed,
                ..eba_synth::SynthConfig::tiny()
            })
        };
        let row = |u: i64, p: i64| crate::protocol::IngestRow {
            user: u,
            patient: p,
            day: Some(1),
        };
        let anchor = {
            let svc = AuditService::from_hospital_durable(hospital(3), &pile, Durability::Strict)
                .unwrap();
            assert!(svc.is_durable());
            assert_eq!(svc.recovery_report().unwrap().batches(), 0);
            svc.ingest_rows(&[row(1, 10_000), row(2, 10_001)]).unwrap();
            svc.ingest_rows(&[row(3, 10_002)]).unwrap();
            svc.sharded().load().global_log_len()
        };
        // "Restart": the same base data plus the recovered store must
        // reproduce the acknowledged log exactly.
        let svc =
            AuditService::from_hospital_durable(hospital(3), &pile, Durability::Strict).unwrap();
        let report = svc.recovery_report().expect("durable service");
        assert_eq!(report.batches(), 2);
        assert_eq!(report.rows, 3);
        assert!(!report.lost_data());
        assert_eq!(svc.sharded().load().global_log_len(), anchor);
        assert!(
            report.notes.iter().any(|n| n.starts_with("shard 0:")),
            "recovery reports per-shard placement: {:?}",
            report.notes
        );
        let _ = std::fs::remove_file(&pile);
        let _ = std::fs::remove_file(DurableStore::wal_path(&pile));
    }

    #[test]
    fn days_in_log_ignores_skewed_stamps() {
        let svc = AuditService::tiny_synthetic(1);
        let epochs = svc.sharded().load();
        let days = epochs
            .shards()
            .iter()
            .map(|s| days_in_log(s.db(), svc.spec.table, &svc.cols))
            .max()
            .unwrap();
        assert!(
            (1..=svc.days).contains(&days),
            "well-formed log ⇒ within the config window ({days} vs {})",
            svc.days
        );
    }
}
