//! The TCP listener: std-only thread-per-connection serving with a
//! graceful shutdown that unblocks in-flight sessions, per-session
//! socket deadlines (a stalled peer gets `ERR timeout` and is closed,
//! never pinning a thread forever), capped-exponential backoff on
//! accept failures, and the overload-protection layer: admission
//! control at the connection cap (`ERR busy`, never a silent drop),
//! bounded request frames (`ERR toolong`), a batch-row cap enforced
//! before any row line is read, and write-stall teardown with a logged
//! reason.

use crate::frame::{BoundedLineReader, FrameLine};
use crate::protocol::{Command, IngestRow, ProtocolError, Response, MAX_INGEST_BATCH};
use crate::session::Session;
use crate::{AuditService, DEFAULT_INGEST_QUEUE};
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-connection socket policy and resource limits. The deadline
/// defaults (2-minute read and write) keep an interactive auditor
/// comfortable while bounding how long one stalled peer — a slowloris, a
/// wedged script, a half-dead NAT mapping — can pin a session thread;
/// the caps bound what any one peer (or all of them together) can make
/// the server hold in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// How long one blocking read may wait for the peer (`None`: forever).
    /// On expiry the session answers `ERR timeout` and closes.
    pub read_timeout: Option<Duration>,
    /// How long one blocking write may stall on the peer (`None`:
    /// forever). On expiry the connection is dropped (the write side is
    /// the one that's wedged — a reply cannot be delivered either) and
    /// the teardown reason lands in the operator log.
    pub write_timeout: Option<Duration>,
    /// Cap on concurrently open sessions (0 = unlimited). An excess
    /// connection gets one `ERR busy` frame in greeting position — with
    /// a `retry-after-ms` hint — and is closed; never a silent drop.
    pub max_connections: usize,
    /// Cap on one inbound request line, in bytes (0 = unlimited). An
    /// overlong line gets `ERR toolong` and the connection is closed —
    /// the bounded frame reader never buffers past the cap, so one peer
    /// cannot OOM the server with a single newline-free stream.
    pub max_line_bytes: usize,
    /// Cap on one `INGEST` batch's announced row count (0 = only the
    /// absolute [`MAX_INGEST_BATCH`] bound applies). An oversized header
    /// is refused with `ERR toolong` *before* any row line is read; the
    /// session stays usable.
    pub max_batch_rows: usize,
    /// Cap on concurrent `INGEST` batches in the writer path (one
    /// writing + waiters) before new batches are shed with
    /// `ERR overloaded` (0 = never shed). Applied to the service at
    /// spawn; read commands never shed.
    pub max_ingest_queue: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            read_timeout: Some(Duration::from_secs(120)),
            write_timeout: Some(Duration::from_secs(120)),
            max_connections: 256,
            max_line_bytes: 64 * 1024,
            max_batch_rows: MAX_INGEST_BATCH,
            max_ingest_queue: DEFAULT_INGEST_QUEUE,
        }
    }
}

impl ServerConfig {
    /// The read deadline in whole seconds, for the `ERR timeout` message.
    fn read_timeout_secs(&self) -> u64 {
        self.read_timeout.map_or(0, |d| d.as_secs().max(1))
    }
}

/// A running `eba-serve` instance: the bound address, the shared service
/// state, and the accept thread. Dropping the server shuts it down.
pub struct Server {
    addr: SocketAddr,
    service: Arc<AuditService>,
    inner: Option<Inner>,
}

struct Inner {
    shutdown: Arc<AtomicBool>,
    accept: JoinHandle<()>,
    conns: Arc<Mutex<Registry>>,
}

/// Live-connection registry: one cloned handle per open session, so
/// shutdown can unblock sessions parked in `read`. Sessions deregister on
/// exit — the clone must be dropped then, or the socket's fd (and the
/// client's EOF) would linger for the life of the server.
#[derive(Default)]
struct Registry {
    next_token: usize,
    open: HashMap<usize, TcpStream>,
}

impl Registry {
    fn register(&mut self, conn: TcpStream) -> usize {
        let token = self.next_token;
        self.next_token += 1;
        self.open.insert(token, conn);
        token
    }
}

/// Locks a registry mutex, recovering a poisoned guard (the registry is a
/// plain list; a panicking session cannot leave it torn).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections, one session thread per connection, with the
    /// default socket deadlines ([`ServerConfig::default`]).
    pub fn spawn(service: AuditService, addr: &str) -> std::io::Result<Server> {
        Self::spawn_with(service, addr, ServerConfig::default())
    }

    /// [`Server::spawn`] with explicit socket deadlines.
    pub fn spawn_with(
        service: AuditService,
        addr: &str,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        service.set_max_ingest_queue(config.max_ingest_queue);
        let service = Arc::new(service);
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Registry>> = Arc::default();
        let accept = {
            let service = service.clone();
            let shutdown = shutdown.clone();
            let conns = conns.clone();
            std::thread::Builder::new()
                .name("eba-serve-accept".into())
                .spawn(move || accept_loop(listener, service, shutdown, conns, config))?
        };
        Ok(Server {
            addr,
            service,
            inner: Some(Inner {
                shutdown,
                accept,
                conns,
            }),
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service state (e.g. to compare server replies against
    /// the library-level `*_at` answers for the same epoch).
    pub fn service(&self) -> &Arc<AuditService> {
        &self.service
    }

    /// How many sessions are currently open — the admission-control
    /// gauge, and the observable the chaos suite polls to prove sessions
    /// are reaped (no leaked workers) after every failure mode.
    pub fn live_sessions(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |inner| lock(&inner.conns).open.len())
    }

    /// Graceful shutdown: stop accepting, unblock every in-flight session
    /// (their sockets are shut down, so blocked reads return EOF), and
    /// join all session threads before returning. Idempotent.
    pub fn shutdown(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        inner.shutdown.store(true, Ordering::SeqCst);
        // Sessions blocked in read_line observe EOF and exit their loop.
        for conn in lock(&inner.conns).open.values() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        // Unblock the accept call itself.
        let _ = TcpStream::connect(self.addr);
        let _ = inner.accept.join();
    }

    /// Blocks until the accept thread exits (i.e. until another thread
    /// calls [`Server::shutdown`] or the process dies). Used by the
    /// `eba-serve` binary and `eba serve`.
    pub fn join(mut self) {
        if let Some(inner) = self.inner.take() {
            let _ = inner.accept.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Backoff policy for accept failures (e.g. EMFILE under fd exhaustion):
/// an accept error does not dequeue the pending connection, so without a
/// pause the loop busy-spins at 100% CPU until the condition clears — but
/// a fixed pause either wastes latency when the glitch was transient or
/// spins too hot when it isn't. Delays double from 10 ms up to a 2 s cap
/// and reset on the next successful accept; the consecutive-failure
/// count is surfaced through the operator log at every power of two
/// (1st, 2nd, 4th, 8th, ... — loud enough to see, quiet enough not to
/// flood the log during a long outage).
struct AcceptBackoff {
    delay: Duration,
    consecutive_failures: u64,
}

impl AcceptBackoff {
    const INITIAL: Duration = Duration::from_millis(10);
    const CAP: Duration = Duration::from_secs(2);

    fn new() -> AcceptBackoff {
        AcceptBackoff {
            delay: Self::INITIAL,
            consecutive_failures: 0,
        }
    }

    /// Records a successful accept: the next failure starts over.
    fn success(&mut self) {
        self.delay = Self::INITIAL;
        self.consecutive_failures = 0;
    }

    /// Records one failed accept. Returns how long to sleep before
    /// retrying, and — at power-of-two failure counts — an operator
    /// warning carrying the streak length and the error.
    fn failure(&mut self, err: &std::io::Error) -> (Duration, Option<String>) {
        self.consecutive_failures += 1;
        let delay = self.delay;
        self.delay = (self.delay * 2).min(Self::CAP);
        let warning = self.consecutive_failures.is_power_of_two().then(|| {
            format!(
                "accept failed {} time(s) in a row ({err}); retrying in {} ms",
                self.consecutive_failures,
                delay.as_millis()
            )
        });
        (delay, warning)
    }
}

/// Shed-at-the-cap accounting for the accept loop: counts refused
/// connections and surfaces the live/max gauge in the operator log at
/// power-of-two shed counts (same cadence as [`AcceptBackoff`] — loud
/// enough to see, quiet enough not to flood the log during a storm).
struct ShedGauge {
    shed: u64,
}

impl ShedGauge {
    fn new() -> ShedGauge {
        ShedGauge { shed: 0 }
    }

    fn shed(&mut self, live: usize, max: usize) -> Option<String> {
        self.shed += 1;
        self.shed.is_power_of_two().then(|| {
            format!(
                "connection shed at the cap: {live} live / max {max}; {} shed so far",
                self.shed
            )
        })
    }
}

/// Refuses one over-cap connection: one `ERR busy` frame (with the
/// `retry-after-ms` hint), then close. The write gets a short deadline of
/// its own so a peer that won't read its refusal cannot stall the accept
/// loop behind it.
fn reject_busy(mut stream: TcpStream, live: usize, max: usize) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = Response::err(&ProtocolError::Busy { live, max }).write_to(&mut stream);
}

fn accept_loop(
    listener: TcpListener,
    service: Arc<AuditService>,
    shutdown: Arc<AtomicBool>,
    conns: Arc<Mutex<Registry>>,
    config: ServerConfig,
) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    let mut backoff = AcceptBackoff::new();
    let mut gauge = ShedGauge::new();
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        // Reap finished sessions so a long-running server doesn't hold a
        // handle per connection it ever served (dropping a finished
        // thread's handle detaches and releases it; only live sessions
        // are kept for the join at shutdown).
        workers.retain(|w| !w.is_finished());
        let stream = match stream {
            Ok(stream) => {
                backoff.success();
                stream
            }
            Err(err) => {
                let (delay, warning) = backoff.failure(&err);
                if let Some(warning) = warning {
                    service.record_warning(warning);
                }
                std::thread::sleep(delay);
                continue;
            }
        };
        // Small request/response frames: without nodelay, Nagle + delayed
        // ACK cost tens of milliseconds per question.
        let _ = stream.set_nodelay(true);
        // Socket deadlines: a peer that stops driving its side of the
        // protocol gets `ERR timeout`, not a pinned thread.
        let _ = stream.set_read_timeout(config.read_timeout);
        let _ = stream.set_write_timeout(config.write_timeout);
        let Ok(clone) = stream.try_clone() else {
            continue; // can't make the shutdown handle: drop it
        };
        // Admission control: the cap check and the registration share one
        // lock scope, so a burst of accepts cannot overshoot the cap.
        let token = {
            let mut registry = lock(&conns);
            let live = registry.open.len();
            if config.max_connections > 0 && live >= config.max_connections {
                drop(registry);
                if let Some(warning) = gauge.shed(live, config.max_connections) {
                    service.record_warning(warning);
                }
                reject_busy(stream, live, config.max_connections);
                continue;
            }
            registry.register(clone)
        };
        let service = service.clone();
        let shutdown = shutdown.clone();
        let session_conns = conns.clone();
        let worker = std::thread::Builder::new()
            .name("eba-serve-session".into())
            .spawn(move || {
                serve_connection(stream, service, shutdown, config);
                // Deregister (dropping the clone) so the client sees EOF
                // now, not when the whole server exits.
                lock(&session_conns).open.remove(&token);
            });
        match worker {
            Ok(handle) => workers.push(handle),
            Err(_) => {
                // Thread exhaustion: drop the connection again.
                lock(&conns).open.remove(&token);
            }
        }
    }
    for w in workers {
        let _ = w.join();
    }
}

/// Whether an I/O error is a socket deadline expiring (the two kinds
/// platforms report for `SO_RCVTIMEO`/`SO_SNDTIMEO`).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Drives one connection: greeting, then a command/reply loop until QUIT,
/// EOF, shutdown, or an expired socket deadline (answered with
/// `ERR timeout`, then closed). A panic inside a command handler is
/// recovered into an `ERR internal` reply — it never reaches the socket
/// as a dead connection, and (PR 3's poison recovery) never takes the
/// engine down.
fn serve_connection(
    stream: TcpStream,
    service: Arc<AuditService>,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown-peer".to_string());
    let mut reader = BoundedLineReader::new(BufReader::new(read_half), config.max_line_bytes);
    let mut writer = stream;
    let mut session = Session::new(service.clone());
    if session.greeting().write_to(&mut writer).is_err() {
        return;
    }
    let timeout_reply = Response::err(&ProtocolError::Timeout {
        seconds: config.read_timeout_secs(),
    });
    let mut line = String::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match reader.read_line(&mut line) {
            Ok(FrameLine::Line) => {}
            Ok(FrameLine::Eof) => return,
            Ok(FrameLine::TooLong) => {
                // The rest of the overlong line was never consumed, so
                // resyncing is impossible by construction: reply, close.
                let _ = Response::err(&ProtocolError::LineTooLong {
                    max: config.max_line_bytes,
                })
                .write_to(&mut writer);
                return;
            }
            Err(e) => {
                if is_timeout(&e) {
                    // Best-effort courtesy reply; the close is the point.
                    let _ = timeout_reply.write_to(&mut writer);
                }
                return;
            }
        }
        let parsed = Command::parse(&line);
        let (response, quit) = match parsed {
            Ok(None) => continue,
            Ok(Some(Command::Quit)) => (session.handle(Command::Quit, vec![]), true),
            Ok(Some(Command::Ingest { count }))
                if config.max_batch_rows > 0 && count > config.max_batch_rows =>
            {
                // Refused from the header alone — not a single row line
                // is read or buffered, and the session stays usable. (A
                // conforming client stops sending rows on the error.)
                (
                    Response::err(&ProtocolError::BatchSize {
                        got: count,
                        max: config.max_batch_rows,
                    }),
                    false,
                )
            }
            Ok(Some(Command::Ingest { count })) => {
                match read_batch(&mut reader, count, &config) {
                    // The batch was consumed whole even if a row is bad, so
                    // the stream stays in sync with the command grammar.
                    Ok(rows) => match parse_batch(&rows) {
                        Ok(rows) => (
                            dispatch(&mut session, Command::Ingest { count }, rows),
                            false,
                        ),
                        Err(e) => (Response::err(&e), false),
                    },
                    Err(e) => (Response::err(&e), true),
                }
            }
            Ok(Some(cmd)) => (dispatch(&mut session, cmd, vec![]), false),
            Err(e) => (Response::err(&e), false),
        };
        if let Err(e) = response.write_to(&mut writer) {
            if is_timeout(&e) {
                // A peer that stopped reading its replies: the write-side
                // deadline fired. Tear the session down with the reason
                // on record — one stalled reader never wedges a worker.
                service.record_warning(format!(
                    "session {peer}: reply write stalled past the deadline ({e}); \
                     dropping the session"
                ));
            }
            return;
        }
        if quit {
            return;
        }
        // A successful SUBSCRIBE switches the connection into event
        // mode: the server pushes frames, the client may only QUIT.
        if let Some((id, rx)) = session.take_subscription() {
            serve_subscription(&mut reader, &mut writer, &shutdown, rx);
            service.unsubscribe(id);
            return;
        }
    }
}

/// Drives one subscribed connection: pushes `EVENT` frames as they
/// arrive on the session's bounded queue, polls the socket for `QUIT`
/// (or EOF) between deliveries, and exits on shutdown. A disconnected
/// queue means the publisher shed this subscriber as a slow consumer —
/// the backlog has already been delivered by then, so the session gets
/// one final typed `ERR slow-consumer` frame and the connection closes.
fn serve_subscription(
    reader: &mut BoundedLineReader<BufReader<TcpStream>>,
    writer: &mut TcpStream,
    shutdown: &AtomicBool,
    rx: std::sync::mpsc::Receiver<crate::push::Event>,
) {
    use std::sync::mpsc::RecvTimeoutError;
    // Event mode inverts the read pattern: the socket is *polled* with a
    // short deadline so event delivery stays prompt, instead of parking
    // in a long blocking read. Idle subscribers are expected to sit
    // silent for hours, so the session read deadline no longer applies.
    if reader
        .get_mut()
        .get_mut()
        .set_read_timeout(Some(Duration::from_millis(5)))
        .is_err()
    {
        return;
    }
    let mut line = String::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(event) => {
                if event.response().write_to(writer).is_err() {
                    return;
                }
                // Drain any burst without waiting out another poll tick.
                while let Ok(event) = rx.try_recv() {
                    if event.response().write_to(writer).is_err() {
                        return;
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // The publisher dropped our sender: shed for not keeping
                // up. The queued backlog has been fully delivered above.
                let _ = Response::err(&ProtocolError::SlowConsumer {
                    queued: crate::push::EVENT_QUEUE_CAP,
                })
                .write_to(writer);
                return;
            }
        }
        match reader.read_line(&mut line) {
            Ok(FrameLine::Line) => {
                let word = line.trim();
                if word.eq_ignore_ascii_case("QUIT") {
                    let _ = Response::ok("bye").write_to(writer);
                    return;
                }
                if !word.is_empty() && !word.starts_with('#') {
                    let usage = ProtocolError::Usage("QUIT (session is in event mode)");
                    if Response::err(&usage).write_to(writer).is_err() {
                        return;
                    }
                }
            }
            Ok(FrameLine::Eof) => return,
            Ok(FrameLine::TooLong) => return,
            Err(e) if is_timeout(&e) => {}
            Err(_) => return,
        }
    }
}

/// Reads the `count` continuation lines of an `INGEST` batch. A peer
/// that announces a batch and then stalls past the read deadline gets
/// `ERR timeout` (and the connection closed) — exactly the slowloris
/// shape the deadline exists for; an overlong row line is `ERR toolong`
/// with the same reply-then-close contract.
fn read_batch(
    reader: &mut BoundedLineReader<BufReader<TcpStream>>,
    count: usize,
    config: &ServerConfig,
) -> Result<Vec<String>, ProtocolError> {
    let mut rows = Vec::with_capacity(count.min(4096));
    let mut line = String::new();
    for i in 0..count {
        match reader.read_line(&mut line) {
            Ok(FrameLine::Line) => rows.push(line.trim().to_string()),
            Ok(FrameLine::TooLong) => {
                return Err(ProtocolError::LineTooLong {
                    max: config.max_line_bytes,
                })
            }
            Err(e) if is_timeout(&e) => {
                return Err(ProtocolError::Timeout {
                    seconds: config.read_timeout_secs(),
                })
            }
            Ok(FrameLine::Eof) | Err(_) => {
                return Err(ProtocolError::TruncatedBatch {
                    got: i,
                    expected: count,
                })
            }
        }
    }
    Ok(rows)
}

fn parse_batch(lines: &[String]) -> Result<Vec<IngestRow>, ProtocolError> {
    lines
        .iter()
        .enumerate()
        .map(|(i, l)| IngestRow::parse(l, i))
        .collect()
}

/// Runs one command with a panic barrier: a recovered unwind becomes a
/// typed `ERR internal` reply and the session keeps serving (the engine's
/// locks all recover from poisoning, so the next question still answers).
fn dispatch(session: &mut Session, cmd: Command, rows: Vec<IngestRow>) -> Response {
    let caught = catch_unwind(AssertUnwindSafe(|| session.handle(cmd, rows)));
    match caught {
        Ok(response) => response,
        Err(payload) => {
            let what = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            ProtocolError::Internal(what).into()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Client;

    #[test]
    fn spawn_serve_shutdown_round_trip() {
        let mut server =
            Server::spawn(AuditService::tiny_synthetic(3), "127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let mut client = Client::connect(addr).expect("connect");
        assert!(client.greeting().head.starts_with("OK eba-serve 1 epoch 0"));
        let pong = client.send("PING").expect("ping");
        assert_eq!(pong.head, "OK pong");
        // Second concurrent session.
        let mut other = Client::connect(addr).expect("connect 2");
        assert!(other.send("SEQ").expect("seq").is_ok());
        // Shutdown with both sessions still open: returns promptly, the
        // clients observe EOF, and the port stops accepting.
        server.shutdown();
        assert!(client.send("PING").is_err(), "socket is gone");
        assert!(TcpStream::connect(addr).is_err(), "listener closed");
        // Idempotent.
        server.shutdown();
    }

    #[test]
    fn accept_backoff_doubles_caps_and_resets() {
        let mut b = AcceptBackoff::new();
        let err = || std::io::Error::other("emfile");
        let mut delays = Vec::new();
        let mut warnings = 0;
        for _ in 0..12 {
            let (delay, warning) = b.failure(&err());
            delays.push(delay);
            warnings += usize::from(warning.is_some());
        }
        assert_eq!(delays[0], Duration::from_millis(10));
        assert_eq!(delays[1], Duration::from_millis(20));
        assert_eq!(delays[7], Duration::from_millis(1280));
        assert_eq!(delays[8], Duration::from_secs(2), "capped");
        assert_eq!(delays[11], Duration::from_secs(2), "stays capped");
        // Warned at streaks 1, 2, 4, 8 — not on every failure.
        assert_eq!(warnings, 4);
        let (_, w) = b.failure(&err());
        assert!(w.is_none(), "13 is not a power of two");
        // A success resets both the delay and the streak.
        b.success();
        let (delay, warning) = b.failure(&err());
        assert_eq!(delay, Duration::from_millis(10));
        let warning = warning.expect("first failure of a new streak warns");
        assert!(warning.contains("1 time(s)"), "{warning}");
        assert!(warning.contains("emfile"), "{warning}");
    }

    #[test]
    fn idle_session_gets_err_timeout_then_eof() {
        let config = ServerConfig {
            read_timeout: Some(Duration::from_millis(150)),
            write_timeout: Some(Duration::from_secs(5)),
            ..ServerConfig::default()
        };
        let server = Server::spawn_with(AuditService::tiny_synthetic(3), "127.0.0.1:0", config)
            .expect("bind");
        let mut client = Client::connect(server.local_addr()).expect("connect");
        // A live session inside the deadline answers normally...
        assert_eq!(client.send("PING").expect("ping").head, "OK pong");
        // ...then goes idle past it: the server sends `ERR timeout` and
        // closes, which the drained tail shows in full.
        std::thread::sleep(Duration::from_millis(400));
        let tail = client.drain().expect("drain the close");
        assert!(tail.starts_with("ERR timeout "), "{tail}");
        assert!(tail.contains("idle"), "{tail}");
        assert!(tail.ends_with(".\n"), "framed to the end: {tail}");
    }

    #[test]
    fn stalled_ingest_batch_gets_err_timeout() {
        let config = ServerConfig {
            read_timeout: Some(Duration::from_millis(150)),
            write_timeout: Some(Duration::from_secs(5)),
            ..ServerConfig::default()
        };
        let server = Server::spawn_with(AuditService::tiny_synthetic(3), "127.0.0.1:0", config)
            .expect("bind");
        let mut client = Client::connect(server.local_addr()).expect("connect");
        // Announce a 3-row batch, send one row, stall: the slowloris shape.
        client.send_raw(b"INGEST 3\n1 10000 1\n").expect("partial");
        let reply = client.read_reply_frame().expect("timeout reply");
        assert!(reply.head.starts_with("ERR timeout "), "{}", reply.head);
        // The server closed the connection after the reply.
        assert_eq!(client.drain().expect("eof"), "");
        // The stalled batch was never acknowledged, so nothing published.
        assert_eq!(server.service().sharded().seq(), 0);
    }

    #[test]
    fn oversized_ingest_header_is_refused_and_the_session_stays_usable() {
        let config = ServerConfig {
            max_batch_rows: 10,
            ..ServerConfig::default()
        };
        let server = Server::spawn_with(AuditService::tiny_synthetic(3), "127.0.0.1:0", config)
            .expect("bind");
        let mut client = Client::connect(server.local_addr()).expect("connect");
        // The count alone condemns the batch: no row is read, no memory
        // reserved, and the reply is typed.
        let reply = client.send("INGEST 11").expect("refusal");
        assert!(reply.head.starts_with("ERR toolong "), "{}", reply.head);
        assert!(reply.head.contains("1..=10"), "{}", reply.head);
        // Same session, conforming batch: accepted.
        let rows: Vec<_> = ["1 10000 1", "2 10001 2"]
            .iter()
            .enumerate()
            .map(|(i, l)| crate::protocol::IngestRow::parse(l, i).unwrap())
            .collect();
        let reply = client.ingest(&rows).expect("small batch");
        assert_eq!(reply.head, "OK ingest seq 1 rows 2 new_rows 2 rebuilt 0");
        assert_eq!(server.service().sharded().seq(), 1);
    }

    #[test]
    fn overlong_request_line_gets_err_toolong_then_close() {
        let config = ServerConfig {
            max_line_bytes: 128,
            ..ServerConfig::default()
        };
        let server = Server::spawn_with(AuditService::tiny_synthetic(3), "127.0.0.1:0", config)
            .expect("bind");
        let mut client = Client::connect(server.local_addr()).expect("connect");
        let long = format!("EXPLAIN {}\n", "9".repeat(500));
        client.send_raw(long.as_bytes()).expect("send");
        let reply = client.read_reply_frame().expect("toolong reply");
        assert!(reply.head.starts_with("ERR toolong "), "{}", reply.head);
        assert!(reply.head.contains("128"), "{}", reply.head);
        // Reply-then-close: nothing after the frame.
        assert_eq!(client.drain().expect("eof"), "");
    }

    #[test]
    fn connection_cap_rejects_with_err_busy_and_frees_on_close() {
        let config = ServerConfig {
            max_connections: 2,
            ..ServerConfig::default()
        };
        let server = Server::spawn_with(AuditService::tiny_synthetic(3), "127.0.0.1:0", config)
            .expect("bind");
        let addr = server.local_addr();
        let mut a = Client::connect(addr).expect("a");
        let _b = Client::connect(addr).expect("b");
        // Third connection: admission control answers `ERR busy` in the
        // greeting position, then closes — never a silent drop.
        let Err(err) = Client::connect(addr) else {
            panic!("third connection admitted over the cap");
        };
        let text = err.to_string();
        assert!(text.contains("ERR busy "), "{text}");
        assert!(text.contains("retry-after-ms"), "{text}");
        // The shed is on the operator record.
        assert!(server
            .service()
            .warnings()
            .iter()
            .any(|w| w.contains("connection shed at the cap")));
        // Freeing a slot re-admits.
        assert_eq!(a.send("QUIT").expect("quit").head, "OK bye");
        drop(a);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut admitted = None;
        while std::time::Instant::now() < deadline {
            match Client::connect(addr) {
                Ok(c) => {
                    admitted = Some(c);
                    break;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        let mut c = admitted.expect("slot freed after QUIT");
        assert_eq!(c.send("PING").expect("ping").head, "OK pong");
    }

    #[test]
    fn busy_retry_honours_the_server_hint_and_eventually_connects() {
        use crate::client::{retry_after_hint, ClientConfig, RetryPolicy};
        let config = ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        };
        let server = Server::spawn_with(AuditService::tiny_synthetic(3), "127.0.0.1:0", config)
            .expect("bind");
        let addr = server.local_addr();
        let holder = Client::connect(addr).expect("the only slot");
        // Without retries the refusal surfaces at once — and carries the
        // server's hint in the wrapped `ERR busy` head.
        let Err(err) = Client::connect(addr) else {
            panic!("second connection admitted over the cap");
        };
        assert_eq!(
            retry_after_hint(&err.to_string()),
            Some(Duration::from_millis(crate::protocol::BUSY_RETRY_AFTER_MS))
        );
        // Free the slot while a retrying client is waiting out the hint.
        let release = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(300));
            drop(holder);
        });
        let retrying = ClientConfig {
            retry: RetryPolicy {
                retries: 5,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(2),
            },
            ..ClientConfig::default()
        };
        let started = std::time::Instant::now();
        let mut c = Client::connect_with(addr, retrying).expect("admitted after the slot freed");
        // The local backoff tops out at 2 ms per attempt — five retries of
        // that could never bridge the 300 ms hold. Only waiting out the
        // 1 s `retry-after-ms` hint gets the client past the busy window.
        assert!(
            started.elapsed() >= Duration::from_millis(crate::protocol::BUSY_RETRY_AFTER_MS),
            "retried after {:?}, before the hint elapsed",
            started.elapsed()
        );
        assert_eq!(c.send("PING").expect("ping").head, "OK pong");
        release.join().expect("release thread");
    }

    #[test]
    fn quit_closes_only_that_session() {
        let server = Server::spawn(AuditService::tiny_synthetic(3), "127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let mut a = Client::connect(addr).expect("a");
        let mut b = Client::connect(addr).expect("b");
        assert_eq!(a.send("QUIT").expect("quit").head, "OK bye");
        assert!(a.send("PING").is_err(), "a is closed");
        assert_eq!(b.send("PING").expect("b lives").head, "OK pong");
    }
}
