//! The TCP listener: std-only thread-per-connection serving with a
//! graceful shutdown that unblocks in-flight sessions.

use crate::protocol::{Command, IngestRow, ProtocolError, Response};
use crate::session::Session;
use crate::AuditService;
use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// A running `eba-serve` instance: the bound address, the shared service
/// state, and the accept thread. Dropping the server shuts it down.
pub struct Server {
    addr: SocketAddr,
    service: Arc<AuditService>,
    inner: Option<Inner>,
}

struct Inner {
    shutdown: Arc<AtomicBool>,
    accept: JoinHandle<()>,
    conns: Arc<Mutex<Registry>>,
}

/// Live-connection registry: one cloned handle per open session, so
/// shutdown can unblock sessions parked in `read`. Sessions deregister on
/// exit — the clone must be dropped then, or the socket's fd (and the
/// client's EOF) would linger for the life of the server.
#[derive(Default)]
struct Registry {
    next_token: usize,
    open: HashMap<usize, TcpStream>,
}

impl Registry {
    fn register(&mut self, conn: TcpStream) -> usize {
        let token = self.next_token;
        self.next_token += 1;
        self.open.insert(token, conn);
        token
    }
}

/// Locks a registry mutex, recovering a poisoned guard (the registry is a
/// plain list; a panicking session cannot leave it torn).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections, one session thread per connection.
    pub fn spawn(service: AuditService, addr: &str) -> std::io::Result<Server> {
        let service = Arc::new(service);
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Registry>> = Arc::default();
        let accept = {
            let service = service.clone();
            let shutdown = shutdown.clone();
            let conns = conns.clone();
            std::thread::Builder::new()
                .name("eba-serve-accept".into())
                .spawn(move || accept_loop(listener, service, shutdown, conns))?
        };
        Ok(Server {
            addr,
            service,
            inner: Some(Inner {
                shutdown,
                accept,
                conns,
            }),
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service state (e.g. to compare server replies against
    /// the library-level `*_at` answers for the same epoch).
    pub fn service(&self) -> &Arc<AuditService> {
        &self.service
    }

    /// Graceful shutdown: stop accepting, unblock every in-flight session
    /// (their sockets are shut down, so blocked reads return EOF), and
    /// join all session threads before returning. Idempotent.
    pub fn shutdown(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        inner.shutdown.store(true, Ordering::SeqCst);
        // Sessions blocked in read_line observe EOF and exit their loop.
        for conn in lock(&inner.conns).open.values() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        // Unblock the accept call itself.
        let _ = TcpStream::connect(self.addr);
        let _ = inner.accept.join();
    }

    /// Blocks until the accept thread exits (i.e. until another thread
    /// calls [`Server::shutdown`] or the process dies). Used by the
    /// `eba-serve` binary and `eba serve`.
    pub fn join(mut self) {
        if let Some(inner) = self.inner.take() {
            let _ = inner.accept.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    service: Arc<AuditService>,
    shutdown: Arc<AtomicBool>,
    conns: Arc<Mutex<Registry>>,
) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        // Reap finished sessions so a long-running server doesn't hold a
        // handle per connection it ever served (dropping a finished
        // thread's handle detaches and releases it; only live sessions
        // are kept for the join at shutdown).
        workers.retain(|w| !w.is_finished());
        let Ok(stream) = stream else {
            // Accept failures (e.g. EMFILE under fd exhaustion) do not
            // dequeue the pending connection; without a pause this loop
            // would busy-spin at 100% CPU until the condition clears.
            std::thread::sleep(std::time::Duration::from_millis(50));
            continue;
        };
        // Small request/response frames: without nodelay, Nagle + delayed
        // ACK cost tens of milliseconds per question.
        let _ = stream.set_nodelay(true);
        let token = match stream.try_clone() {
            Ok(clone) => lock(&conns).register(clone),
            Err(_) => continue, // can't make the shutdown handle: drop it
        };
        let service = service.clone();
        let shutdown = shutdown.clone();
        let session_conns = conns.clone();
        let worker = std::thread::Builder::new()
            .name("eba-serve-session".into())
            .spawn(move || {
                serve_connection(stream, service, shutdown);
                // Deregister (dropping the clone) so the client sees EOF
                // now, not when the whole server exits.
                lock(&session_conns).open.remove(&token);
            });
        match worker {
            Ok(handle) => workers.push(handle),
            Err(_) => {
                // Thread exhaustion: drop the connection again.
                lock(&conns).open.remove(&token);
            }
        }
    }
    for w in workers {
        let _ = w.join();
    }
}

/// Drives one connection: greeting, then a command/reply loop until QUIT,
/// EOF, or shutdown. A panic inside a command handler is recovered into
/// an `ERR internal` reply — it never reaches the socket as a dead
/// connection, and (PR 3's poison recovery) never takes the engine down.
fn serve_connection(stream: TcpStream, service: Arc<AuditService>, shutdown: Arc<AtomicBool>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut session = Session::new(service);
    if session.greeting().write_to(&mut writer).is_err() {
        return;
    }
    let mut line = String::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        let parsed = Command::parse(&line);
        let (response, quit) = match parsed {
            Ok(None) => continue,
            Ok(Some(Command::Quit)) => (session.handle(Command::Quit, vec![]), true),
            Ok(Some(Command::Ingest { count })) => {
                match read_batch(&mut reader, count) {
                    // The batch was consumed whole even if a row is bad, so
                    // the stream stays in sync with the command grammar.
                    Ok(rows) => match parse_batch(&rows) {
                        Ok(rows) => (
                            dispatch(&mut session, Command::Ingest { count }, rows),
                            false,
                        ),
                        Err(e) => (Response::err(&e), false),
                    },
                    Err(e) => (Response::err(&e), true),
                }
            }
            Ok(Some(cmd)) => (dispatch(&mut session, cmd, vec![]), false),
            Err(e) => (Response::err(&e), false),
        };
        if response.write_to(&mut writer).is_err() {
            return;
        }
        if quit {
            return;
        }
    }
}

/// Reads the `count` continuation lines of an `INGEST` batch.
fn read_batch(
    reader: &mut BufReader<TcpStream>,
    count: usize,
) -> Result<Vec<String>, ProtocolError> {
    let mut rows = Vec::with_capacity(count.min(4096));
    let mut line = String::new();
    for i in 0..count {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => {
                return Err(ProtocolError::TruncatedBatch {
                    got: i,
                    expected: count,
                })
            }
            Ok(_) => rows.push(line.trim().to_string()),
        }
    }
    Ok(rows)
}

fn parse_batch(lines: &[String]) -> Result<Vec<IngestRow>, ProtocolError> {
    lines
        .iter()
        .enumerate()
        .map(|(i, l)| IngestRow::parse(l, i))
        .collect()
}

/// Runs one command with a panic barrier: a recovered unwind becomes a
/// typed `ERR internal` reply and the session keeps serving (the engine's
/// locks all recover from poisoning, so the next question still answers).
fn dispatch(session: &mut Session, cmd: Command, rows: Vec<IngestRow>) -> Response {
    let caught = catch_unwind(AssertUnwindSafe(|| session.handle(cmd, rows)));
    match caught {
        Ok(response) => response,
        Err(payload) => {
            let what = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            ProtocolError::Internal(what).into()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Client;

    #[test]
    fn spawn_serve_shutdown_round_trip() {
        let mut server =
            Server::spawn(AuditService::tiny_synthetic(3), "127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let mut client = Client::connect(addr).expect("connect");
        assert!(client.greeting().head.starts_with("OK eba-serve 1 epoch 0"));
        let pong = client.send("PING").expect("ping");
        assert_eq!(pong.head, "OK pong");
        // Second concurrent session.
        let mut other = Client::connect(addr).expect("connect 2");
        assert!(other.send("SEQ").expect("seq").is_ok());
        // Shutdown with both sessions still open: returns promptly, the
        // clients observe EOF, and the port stops accepting.
        server.shutdown();
        assert!(client.send("PING").is_err(), "socket is gone");
        assert!(TcpStream::connect(addr).is_err(), "listener closed");
        // Idempotent.
        server.shutdown();
    }

    #[test]
    fn quit_closes_only_that_session() {
        let server = Server::spawn(AuditService::tiny_synthetic(3), "127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let mut a = Client::connect(addr).expect("a");
        let mut b = Client::connect(addr).expect("b");
        assert_eq!(a.send("QUIT").expect("quit").head, "OK bye");
        assert!(a.send("PING").is_err(), "a is closed");
        assert_eq!(b.send("PING").expect("b lives").head, "OK pong");
    }
}
