//! The TCP listener: std-only thread-per-connection serving with a
//! graceful shutdown that unblocks in-flight sessions, per-session
//! socket deadlines (a stalled peer gets `ERR timeout` and is closed,
//! never pinning a thread forever), and capped-exponential backoff on
//! accept failures.

use crate::protocol::{Command, IngestRow, ProtocolError, Response};
use crate::session::Session;
use crate::AuditService;
use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-connection socket policy. The defaults (2-minute read and write
/// deadlines) keep an interactive auditor comfortable while bounding how
/// long one stalled peer — a slowloris, a wedged script, a half-dead NAT
/// mapping — can pin a session thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// How long one blocking read may wait for the peer (`None`: forever).
    /// On expiry the session answers `ERR timeout` and closes.
    pub read_timeout: Option<Duration>,
    /// How long one blocking write may stall on the peer (`None`:
    /// forever). On expiry the connection is dropped (the write side is
    /// the one that's wedged — a reply cannot be delivered either).
    pub write_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            read_timeout: Some(Duration::from_secs(120)),
            write_timeout: Some(Duration::from_secs(120)),
        }
    }
}

impl ServerConfig {
    /// The read deadline in whole seconds, for the `ERR timeout` message.
    fn read_timeout_secs(&self) -> u64 {
        self.read_timeout.map_or(0, |d| d.as_secs().max(1))
    }
}

/// A running `eba-serve` instance: the bound address, the shared service
/// state, and the accept thread. Dropping the server shuts it down.
pub struct Server {
    addr: SocketAddr,
    service: Arc<AuditService>,
    inner: Option<Inner>,
}

struct Inner {
    shutdown: Arc<AtomicBool>,
    accept: JoinHandle<()>,
    conns: Arc<Mutex<Registry>>,
}

/// Live-connection registry: one cloned handle per open session, so
/// shutdown can unblock sessions parked in `read`. Sessions deregister on
/// exit — the clone must be dropped then, or the socket's fd (and the
/// client's EOF) would linger for the life of the server.
#[derive(Default)]
struct Registry {
    next_token: usize,
    open: HashMap<usize, TcpStream>,
}

impl Registry {
    fn register(&mut self, conn: TcpStream) -> usize {
        let token = self.next_token;
        self.next_token += 1;
        self.open.insert(token, conn);
        token
    }
}

/// Locks a registry mutex, recovering a poisoned guard (the registry is a
/// plain list; a panicking session cannot leave it torn).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections, one session thread per connection, with the
    /// default socket deadlines ([`ServerConfig::default`]).
    pub fn spawn(service: AuditService, addr: &str) -> std::io::Result<Server> {
        Self::spawn_with(service, addr, ServerConfig::default())
    }

    /// [`Server::spawn`] with explicit socket deadlines.
    pub fn spawn_with(
        service: AuditService,
        addr: &str,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let service = Arc::new(service);
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Registry>> = Arc::default();
        let accept = {
            let service = service.clone();
            let shutdown = shutdown.clone();
            let conns = conns.clone();
            std::thread::Builder::new()
                .name("eba-serve-accept".into())
                .spawn(move || accept_loop(listener, service, shutdown, conns, config))?
        };
        Ok(Server {
            addr,
            service,
            inner: Some(Inner {
                shutdown,
                accept,
                conns,
            }),
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service state (e.g. to compare server replies against
    /// the library-level `*_at` answers for the same epoch).
    pub fn service(&self) -> &Arc<AuditService> {
        &self.service
    }

    /// Graceful shutdown: stop accepting, unblock every in-flight session
    /// (their sockets are shut down, so blocked reads return EOF), and
    /// join all session threads before returning. Idempotent.
    pub fn shutdown(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        inner.shutdown.store(true, Ordering::SeqCst);
        // Sessions blocked in read_line observe EOF and exit their loop.
        for conn in lock(&inner.conns).open.values() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        // Unblock the accept call itself.
        let _ = TcpStream::connect(self.addr);
        let _ = inner.accept.join();
    }

    /// Blocks until the accept thread exits (i.e. until another thread
    /// calls [`Server::shutdown`] or the process dies). Used by the
    /// `eba-serve` binary and `eba serve`.
    pub fn join(mut self) {
        if let Some(inner) = self.inner.take() {
            let _ = inner.accept.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Backoff policy for accept failures (e.g. EMFILE under fd exhaustion):
/// an accept error does not dequeue the pending connection, so without a
/// pause the loop busy-spins at 100% CPU until the condition clears — but
/// a fixed pause either wastes latency when the glitch was transient or
/// spins too hot when it isn't. Delays double from 10 ms up to a 2 s cap
/// and reset on the next successful accept; the consecutive-failure
/// count is surfaced through the operator log at every power of two
/// (1st, 2nd, 4th, 8th, ... — loud enough to see, quiet enough not to
/// flood the log during a long outage).
struct AcceptBackoff {
    delay: Duration,
    consecutive_failures: u64,
}

impl AcceptBackoff {
    const INITIAL: Duration = Duration::from_millis(10);
    const CAP: Duration = Duration::from_secs(2);

    fn new() -> AcceptBackoff {
        AcceptBackoff {
            delay: Self::INITIAL,
            consecutive_failures: 0,
        }
    }

    /// Records a successful accept: the next failure starts over.
    fn success(&mut self) {
        self.delay = Self::INITIAL;
        self.consecutive_failures = 0;
    }

    /// Records one failed accept. Returns how long to sleep before
    /// retrying, and — at power-of-two failure counts — an operator
    /// warning carrying the streak length and the error.
    fn failure(&mut self, err: &std::io::Error) -> (Duration, Option<String>) {
        self.consecutive_failures += 1;
        let delay = self.delay;
        self.delay = (self.delay * 2).min(Self::CAP);
        let warning = self.consecutive_failures.is_power_of_two().then(|| {
            format!(
                "accept failed {} time(s) in a row ({err}); retrying in {} ms",
                self.consecutive_failures,
                delay.as_millis()
            )
        });
        (delay, warning)
    }
}

fn accept_loop(
    listener: TcpListener,
    service: Arc<AuditService>,
    shutdown: Arc<AtomicBool>,
    conns: Arc<Mutex<Registry>>,
    config: ServerConfig,
) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    let mut backoff = AcceptBackoff::new();
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        // Reap finished sessions so a long-running server doesn't hold a
        // handle per connection it ever served (dropping a finished
        // thread's handle detaches and releases it; only live sessions
        // are kept for the join at shutdown).
        workers.retain(|w| !w.is_finished());
        let stream = match stream {
            Ok(stream) => {
                backoff.success();
                stream
            }
            Err(err) => {
                let (delay, warning) = backoff.failure(&err);
                if let Some(warning) = warning {
                    service.record_warning(warning);
                }
                std::thread::sleep(delay);
                continue;
            }
        };
        // Small request/response frames: without nodelay, Nagle + delayed
        // ACK cost tens of milliseconds per question.
        let _ = stream.set_nodelay(true);
        // Socket deadlines: a peer that stops driving its side of the
        // protocol gets `ERR timeout`, not a pinned thread.
        let _ = stream.set_read_timeout(config.read_timeout);
        let _ = stream.set_write_timeout(config.write_timeout);
        let token = match stream.try_clone() {
            Ok(clone) => lock(&conns).register(clone),
            Err(_) => continue, // can't make the shutdown handle: drop it
        };
        let service = service.clone();
        let shutdown = shutdown.clone();
        let session_conns = conns.clone();
        let worker = std::thread::Builder::new()
            .name("eba-serve-session".into())
            .spawn(move || {
                serve_connection(stream, service, shutdown, config);
                // Deregister (dropping the clone) so the client sees EOF
                // now, not when the whole server exits.
                lock(&session_conns).open.remove(&token);
            });
        match worker {
            Ok(handle) => workers.push(handle),
            Err(_) => {
                // Thread exhaustion: drop the connection again.
                lock(&conns).open.remove(&token);
            }
        }
    }
    for w in workers {
        let _ = w.join();
    }
}

/// Whether an I/O error is a socket deadline expiring (the two kinds
/// platforms report for `SO_RCVTIMEO`/`SO_SNDTIMEO`).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Drives one connection: greeting, then a command/reply loop until QUIT,
/// EOF, shutdown, or an expired socket deadline (answered with
/// `ERR timeout`, then closed). A panic inside a command handler is
/// recovered into an `ERR internal` reply — it never reaches the socket
/// as a dead connection, and (PR 3's poison recovery) never takes the
/// engine down.
fn serve_connection(
    stream: TcpStream,
    service: Arc<AuditService>,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut session = Session::new(service);
    if session.greeting().write_to(&mut writer).is_err() {
        return;
    }
    let timeout_reply = Response::err(&ProtocolError::Timeout {
        seconds: config.read_timeout_secs(),
    });
    let mut line = String::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Err(e) => {
                if is_timeout(&e) {
                    // Best-effort courtesy reply; the close is the point.
                    let _ = timeout_reply.write_to(&mut writer);
                }
                return;
            }
            Ok(_) => {}
        }
        let parsed = Command::parse(&line);
        let (response, quit) = match parsed {
            Ok(None) => continue,
            Ok(Some(Command::Quit)) => (session.handle(Command::Quit, vec![]), true),
            Ok(Some(Command::Ingest { count })) => {
                match read_batch(&mut reader, count, config.read_timeout_secs()) {
                    // The batch was consumed whole even if a row is bad, so
                    // the stream stays in sync with the command grammar.
                    Ok(rows) => match parse_batch(&rows) {
                        Ok(rows) => (
                            dispatch(&mut session, Command::Ingest { count }, rows),
                            false,
                        ),
                        Err(e) => (Response::err(&e), false),
                    },
                    Err(e) => (Response::err(&e), true),
                }
            }
            Ok(Some(cmd)) => (dispatch(&mut session, cmd, vec![]), false),
            Err(e) => (Response::err(&e), false),
        };
        if response.write_to(&mut writer).is_err() {
            return;
        }
        if quit {
            return;
        }
    }
}

/// Reads the `count` continuation lines of an `INGEST` batch. A peer
/// that announces a batch and then stalls past the read deadline gets
/// `ERR timeout` (and the connection closed) — exactly the slowloris
/// shape the deadline exists for.
fn read_batch(
    reader: &mut BufReader<TcpStream>,
    count: usize,
    timeout_secs: u64,
) -> Result<Vec<String>, ProtocolError> {
    let mut rows = Vec::with_capacity(count.min(4096));
    let mut line = String::new();
    for i in 0..count {
        line.clear();
        match reader.read_line(&mut line) {
            Err(e) if is_timeout(&e) => {
                return Err(ProtocolError::Timeout {
                    seconds: timeout_secs,
                })
            }
            Ok(0) | Err(_) => {
                return Err(ProtocolError::TruncatedBatch {
                    got: i,
                    expected: count,
                })
            }
            Ok(_) => rows.push(line.trim().to_string()),
        }
    }
    Ok(rows)
}

fn parse_batch(lines: &[String]) -> Result<Vec<IngestRow>, ProtocolError> {
    lines
        .iter()
        .enumerate()
        .map(|(i, l)| IngestRow::parse(l, i))
        .collect()
}

/// Runs one command with a panic barrier: a recovered unwind becomes a
/// typed `ERR internal` reply and the session keeps serving (the engine's
/// locks all recover from poisoning, so the next question still answers).
fn dispatch(session: &mut Session, cmd: Command, rows: Vec<IngestRow>) -> Response {
    let caught = catch_unwind(AssertUnwindSafe(|| session.handle(cmd, rows)));
    match caught {
        Ok(response) => response,
        Err(payload) => {
            let what = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            ProtocolError::Internal(what).into()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Client;

    #[test]
    fn spawn_serve_shutdown_round_trip() {
        let mut server =
            Server::spawn(AuditService::tiny_synthetic(3), "127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let mut client = Client::connect(addr).expect("connect");
        assert!(client.greeting().head.starts_with("OK eba-serve 1 epoch 0"));
        let pong = client.send("PING").expect("ping");
        assert_eq!(pong.head, "OK pong");
        // Second concurrent session.
        let mut other = Client::connect(addr).expect("connect 2");
        assert!(other.send("SEQ").expect("seq").is_ok());
        // Shutdown with both sessions still open: returns promptly, the
        // clients observe EOF, and the port stops accepting.
        server.shutdown();
        assert!(client.send("PING").is_err(), "socket is gone");
        assert!(TcpStream::connect(addr).is_err(), "listener closed");
        // Idempotent.
        server.shutdown();
    }

    #[test]
    fn accept_backoff_doubles_caps_and_resets() {
        let mut b = AcceptBackoff::new();
        let err = || std::io::Error::other("emfile");
        let mut delays = Vec::new();
        let mut warnings = 0;
        for _ in 0..12 {
            let (delay, warning) = b.failure(&err());
            delays.push(delay);
            warnings += usize::from(warning.is_some());
        }
        assert_eq!(delays[0], Duration::from_millis(10));
        assert_eq!(delays[1], Duration::from_millis(20));
        assert_eq!(delays[7], Duration::from_millis(1280));
        assert_eq!(delays[8], Duration::from_secs(2), "capped");
        assert_eq!(delays[11], Duration::from_secs(2), "stays capped");
        // Warned at streaks 1, 2, 4, 8 — not on every failure.
        assert_eq!(warnings, 4);
        let (_, w) = b.failure(&err());
        assert!(w.is_none(), "13 is not a power of two");
        // A success resets both the delay and the streak.
        b.success();
        let (delay, warning) = b.failure(&err());
        assert_eq!(delay, Duration::from_millis(10));
        let warning = warning.expect("first failure of a new streak warns");
        assert!(warning.contains("1 time(s)"), "{warning}");
        assert!(warning.contains("emfile"), "{warning}");
    }

    #[test]
    fn idle_session_gets_err_timeout_then_eof() {
        let config = ServerConfig {
            read_timeout: Some(Duration::from_millis(150)),
            write_timeout: Some(Duration::from_secs(5)),
        };
        let server = Server::spawn_with(AuditService::tiny_synthetic(3), "127.0.0.1:0", config)
            .expect("bind");
        let mut client = Client::connect(server.local_addr()).expect("connect");
        // A live session inside the deadline answers normally...
        assert_eq!(client.send("PING").expect("ping").head, "OK pong");
        // ...then goes idle past it: the server sends `ERR timeout` and
        // closes, which the drained tail shows in full.
        std::thread::sleep(Duration::from_millis(400));
        let tail = client.drain().expect("drain the close");
        assert!(tail.starts_with("ERR timeout "), "{tail}");
        assert!(tail.contains("idle"), "{tail}");
        assert!(tail.ends_with(".\n"), "framed to the end: {tail}");
    }

    #[test]
    fn stalled_ingest_batch_gets_err_timeout() {
        let config = ServerConfig {
            read_timeout: Some(Duration::from_millis(150)),
            write_timeout: Some(Duration::from_secs(5)),
        };
        let server = Server::spawn_with(AuditService::tiny_synthetic(3), "127.0.0.1:0", config)
            .expect("bind");
        let mut client = Client::connect(server.local_addr()).expect("connect");
        // Announce a 3-row batch, send one row, stall: the slowloris shape.
        client.send_raw(b"INGEST 3\n1 10000 1\n").expect("partial");
        let reply = client.read_reply_frame().expect("timeout reply");
        assert!(reply.head.starts_with("ERR timeout "), "{}", reply.head);
        // The server closed the connection after the reply.
        assert_eq!(client.drain().expect("eof"), "");
        // The stalled batch was never acknowledged, so nothing published.
        assert_eq!(server.service().shared().seq(), 0);
    }

    #[test]
    fn quit_closes_only_that_session() {
        let server = Server::spawn(AuditService::tiny_synthetic(3), "127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let mut a = Client::connect(addr).expect("a");
        let mut b = Client::connect(addr).expect("b");
        assert_eq!(a.send("QUIT").expect("quit").head, "OK bye");
        assert!(a.send("PING").is_err(), "a is closed");
        assert_eq!(b.send("PING").expect("b lives").head, "OK pong");
    }
}
