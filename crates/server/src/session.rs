//! Per-connection sessions: one pinned [`EpochVec`] per session, every
//! audit question scatter-gathered through the `*_at_shards` forms
//! against it. Shard count 1 degenerates to exactly the old single-epoch
//! session (the `shard_equivalence` suite proves the answers identical),
//! so the protocol surface is unchanged apart from the added `SHARDS`
//! report.

use crate::protocol::{Command, IngestRow, ProtocolError, Response};
use crate::push::{Event, SubscriptionKind};
use crate::AuditService;
use eba_audit::{metrics, portal, timeline};
use eba_relational::{EpochVec, RowId, Value};
use std::sync::mpsc::Receiver;
use std::sync::Arc;

/// One connection's state: the shared service plus the epoch vector the
/// session has pinned. Reads answer from the pin; `REPIN` advances it;
/// `INGEST` goes through the service's single-writer path and
/// deliberately does **not** move the pin (the ingesting auditor keeps
/// their consistent view until they ask for the new one).
pub struct Session {
    service: Arc<AuditService>,
    epochs: Arc<EpochVec>,
    /// Set by a `SUBSCRIBE` command: the registration id plus the
    /// receiving half of the bounded event queue. The listener takes it
    /// ([`Session::take_subscription`]) and switches into event mode.
    subscription: Option<(u64, Receiver<Event>)>,
}

impl Session {
    /// Opens a session, pinning the currently published epoch vector.
    pub fn new(service: Arc<AuditService>) -> Session {
        let epochs = service.sharded().load();
        Session {
            service,
            epochs,
            subscription: None,
        }
    }

    /// The banner sent when a connection opens.
    pub fn greeting(&self) -> Response {
        Response::ok(format!("eba-serve 1 epoch {}", self.epochs.seq()))
    }

    /// The session's pinned epoch vector.
    pub fn epochs(&self) -> &Arc<EpochVec> {
        &self.epochs
    }

    /// Executes one read command against the pinned epoch vector, or an
    /// `INGEST` batch through the writer path.
    pub fn handle(&mut self, cmd: Command, rows: Vec<IngestRow>) -> Response {
        match cmd {
            Command::Ping => Response::ok("pong"),
            Command::Pin => Response::ok(format!("epoch {}", self.epochs.seq())),
            Command::Repin => {
                self.epochs = self.service.sharded().load();
                Response::ok(format!("epoch {}", self.epochs.seq()))
            }
            Command::Seq => Response::ok(format!(
                "published {} pinned {}",
                self.service.sharded().seq(),
                self.epochs.seq()
            )),
            Command::Shards => self.shards(),
            Command::Explain { lid } => self.explain(lid),
            Command::Unexplained { limit, after } => self.unexplained(limit, after),
            Command::Metrics => self.metrics(),
            Command::Subscribe { kind } => self.subscribe(kind),
            Command::Timeline => self.timeline(),
            Command::Misuse { user } => self.misuse(user),
            Command::Ingest { count } => {
                debug_assert_eq!(rows.len(), count);
                self.ingest(&rows)
            }
            Command::Warnings => {
                let warnings = self.service.warnings();
                let mut resp = Response::ok(format!("warnings {}", warnings.len()));
                for w in warnings {
                    resp.push(format!("warn {w}"));
                }
                resp
            }
            Command::Recovery => self.recovery(),
            Command::Quit => Response::ok("bye"),
        }
    }

    /// Resolves a pinned **global** log row id to its shard and row.
    fn locate(&self, global: RowId) -> (usize, RowId) {
        self.epochs
            .locate(global)
            .expect("global id came from this epoch vector")
    }

    fn shards(&self) -> Response {
        let live = self.service.sharded().seq();
        let mut resp = Response::ok(format!(
            "shards {} seq {} pinned {}",
            self.epochs.shard_count(),
            live,
            self.epochs.seq()
        ));
        for (i, shard) in self.epochs.shards().iter().enumerate() {
            resp.push(format!("shard {i} rows {}", shard.log_len()));
        }
        resp
    }

    fn explain(&self, lid: i64) -> Response {
        let svc = &self.service;
        // The lid is not the partition key, so probe every shard's lid
        // index; the one holding the row explains it locally.
        let hit = self.epochs.shards().iter().find_map(|shard| {
            let log = shard.db().table(svc.spec.table);
            log.rows_with(svc.cols.lid, Value::Int(lid))
                .first()
                .map(|&rid| (shard, rid))
        });
        let Some((shard, rid)) = hit else {
            return ProtocolError::NotFound(format!("no log record with Lid = {lid}")).into();
        };
        let db = shard.db();
        let row = db.table(svc.spec.table).row(rid);
        let explanations = match svc.explainer.explain(db, &svc.spec, rid, 3) {
            Ok(e) => e,
            Err(e) => return ProtocolError::Internal(e.to_string()).into(),
        };
        let mut resp = Response::ok(format!(
            "explain lid {lid} user {} patient {} explanations {}",
            row[svc.cols.user].display(db.pool()),
            row[svc.cols.patient].display(db.pool()),
            explanations.len()
        ));
        for e in &explanations {
            resp.push(format!("len {} {}", e.length, e.text));
        }
        resp
    }

    /// `UNEXPLAINED [limit [AFTER <rid>]]`.
    ///
    /// The serving path reads the epoch's **maintained** partition: the
    /// page is `RowSet` rank + ordered iteration from the cursor — cost
    /// O(limit), not O(unexplained) — where it used to materialize the
    /// entire sorted unexplained vector before truncating (the PR 10
    /// listing-path bugfix). A truncated page ends with the `more …`
    /// marker plus a `next UNEXPLAINED <limit> AFTER <rid>` cursor line,
    /// so the residue is actually fetchable. Epoch vectors published
    /// before the suite was pinned (none, in a served process) fall back
    /// to cold evaluation with byte-identical output.
    fn unexplained(&self, limit: Option<usize>, after: Option<u32>) -> Response {
        let svc = &self.service;
        match self.epochs.maintained(svc.pin_id()) {
            Some(m) => {
                let total = m.unexplained.len();
                // Rows at or below the cursor are skipped by rank, never
                // by iteration.
                let skipped = match after {
                    None => 0,
                    Some(u32::MAX) => total,
                    Some(rid) => m.unexplained.rank(rid + 1),
                };
                let remaining = total - skipped;
                let shown = limit.unwrap_or(remaining).min(remaining);
                let mut resp = self.unexplained_head(total, m.anchors.len());
                let mut last = None;
                let page: Vec<RowId> = match after {
                    None => m.unexplained.iter().take(shown).collect(),
                    Some(u32::MAX) => Vec::new(),
                    Some(rid) => m.unexplained.iter_from(rid + 1).take(shown).collect(),
                };
                for global in page {
                    resp.push(self.render_log_row(global));
                    last = Some(global);
                }
                self.push_page_tail(&mut resp, remaining, shown, limit, last);
                resp
            }
            None => {
                let unexplained = svc
                    .explainer
                    .unexplained_rows_at_shards(&svc.spec, &self.epochs);
                let anchor_total = metrics::anchor_rows_at_shards(&self.epochs, &svc.spec).len();
                let total = unexplained.len();
                let skipped = match after {
                    None => 0,
                    Some(rid) => unexplained.partition_point(|&g| g <= rid),
                };
                let remaining = total - skipped;
                let shown = limit.unwrap_or(remaining).min(remaining);
                let mut resp = self.unexplained_head(total, anchor_total);
                let mut last = None;
                for &global in unexplained[skipped..].iter().take(shown) {
                    resp.push(self.render_log_row(global));
                    last = Some(global);
                }
                self.push_page_tail(&mut resp, remaining, shown, limit, last);
                resp
            }
        }
    }

    fn unexplained_head(&self, total: usize, anchor_total: usize) -> Response {
        Response::ok(format!(
            "unexplained {} of {} epoch {}",
            total,
            anchor_total,
            self.epochs.seq()
        ))
    }

    /// Renders one pinned global log row as a listing line.
    fn render_log_row(&self, global: RowId) -> String {
        let svc = &self.service;
        let (shard, rid) = self.locate(global);
        let db = self.epochs.shards()[shard].db();
        let row = db.table(svc.spec.table).row(rid);
        format!(
            "lid {} user {} patient {}",
            row[svc.cols.lid].display(db.pool()),
            row[svc.cols.user].display(db.pool()),
            row[svc.cols.patient].display(db.pool())
        )
    }

    /// A truncated listing says so on the wire — silence reads as "that
    /// was everything", which is exactly wrong for an audit — and names
    /// the cursor command that fetches the next page.
    fn push_page_tail(
        &self,
        resp: &mut Response,
        remaining: usize,
        shown: usize,
        limit: Option<usize>,
        last: Option<RowId>,
    ) {
        if shown >= remaining {
            return;
        }
        resp.push(format!("more {} rows not shown", remaining - shown));
        if let (Some(limit), Some(last)) = (limit, last) {
            resp.push(format!("next UNEXPLAINED {limit} AFTER {last}"));
        }
    }

    /// `METRICS` — an O(1) read of the maintained partition (counts via
    /// [`eba_relational::Maintained`]'s sets; the intersection is
    /// allocation-free), with cold scatter-gather as the pre-pin fallback.
    fn metrics(&self) -> Response {
        let svc = &self.service;
        let c = match self.epochs.maintained(svc.pin_id()) {
            Some(m) => metrics::confusion_from_maintained(m),
            None => {
                let suite: Vec<&eba_core::ExplanationTemplate> =
                    svc.explainer.templates().iter().collect();
                metrics::evaluate_at_shards(&svc.spec, &suite, None, None, &self.epochs)
            }
        };
        let mut resp = Response::ok(format!("metrics epoch {}", self.epochs.seq()));
        resp.push(format!("anchor_total {}", c.real_total));
        resp.push(format!("explained {}", c.real_explained));
        resp.push(format!("unexplained {}", c.real_total - c.real_explained));
        resp.push(format!("recall {:.6}", c.recall()));
        resp.push(format!("precision {:.6}", c.precision()));
        resp
    }

    /// `SUBSCRIBE …`: registers with the service and parks the queue for
    /// the listener to collect. One subscription per session — the frame
    /// stream has no way to say which feed an `EVENT` belongs to.
    fn subscribe(&mut self, kind: SubscriptionKind) -> Response {
        if self.subscription.is_some() {
            return ProtocolError::Usage("one SUBSCRIBE per session").into();
        }
        let (id, rx) = self.service.subscribe(kind);
        self.subscription = Some((id, rx));
        match kind {
            SubscriptionKind::Unexplained => {
                Response::ok(format!("subscribed unexplained id {id}"))
            }
            SubscriptionKind::Misuse { threshold } => {
                Response::ok(format!("subscribed misuse threshold {threshold} id {id}"))
            }
        }
    }

    /// Hands the pending subscription (if a `SUBSCRIBE` just succeeded)
    /// to the listener, which then drives the event loop.
    pub fn take_subscription(&mut self) -> Option<(u64, Receiver<Event>)> {
        self.subscription.take()
    }

    fn timeline(&self) -> Response {
        let svc = &self.service;
        let t = timeline::daily_stats_at_shards(
            &svc.spec,
            &svc.cols,
            &svc.explainer,
            svc.days,
            &self.epochs,
        );
        let mut resp = Response::ok(format!(
            "timeline epoch {} days {} dropped {}",
            self.epochs.seq(),
            svc.days,
            t.dropped()
        ));
        for s in &t.days {
            resp.push(format!(
                "day {} total {} explained {} firsts {} first_explained {}",
                s.day, s.total, s.explained, s.first_accesses, s.first_explained
            ));
        }
        let o = &t.overflow;
        resp.push(format!(
            "overflow total {} explained {} firsts {} first_explained {}",
            o.total, o.explained, o.first_accesses, o.first_explained
        ));
        resp
    }

    fn misuse(&self, user: Option<i64>) -> Response {
        let svc = &self.service;
        let queue = portal::misuse_summary_at_shards(&svc.spec, &svc.explainer, &self.epochs);
        let pool = self.epochs.shards()[0].db().pool();
        match user {
            Some(user) => {
                let hit = queue
                    .iter()
                    .enumerate()
                    .find(|(_, s)| s.user == Value::Int(user));
                match hit {
                    Some((i, s)) => Response::ok(format!(
                        "misuse user {user} unexplained {} distinct_patients {} rank {}",
                        s.unexplained,
                        s.distinct_patients,
                        i + 1
                    )),
                    None => Response::ok(format!(
                        "misuse user {user} unexplained 0 distinct_patients 0 rank -"
                    )),
                }
            }
            None => {
                let top = 10.min(queue.len());
                let mut resp =
                    Response::ok(format!("misuse top {top} epoch {}", self.epochs.seq()));
                for s in queue.iter().take(top) {
                    resp.push(format!(
                        "user {} unexplained {} distinct_patients {}",
                        s.user.display(pool),
                        s.unexplained,
                        s.distinct_patients
                    ));
                }
                // Make the cut explicit: the triage queue below the top
                // ten still exists, and the operator should know how deep.
                if queue.len() > top {
                    resp.push(format!("more {} rows not shown", queue.len() - top));
                }
                resp
            }
        }
    }

    fn recovery(&self) -> Response {
        let svc = &self.service;
        match svc.recovery_report() {
            None => Response::ok("recovery volatile"),
            Some(r) => {
                let mut resp = Response::ok(format!(
                    "recovery durable batches {} rows {} wal_batches {} dropped {}",
                    r.batches(),
                    r.rows,
                    r.wal_batches,
                    r.dropped.len()
                ));
                resp.push(format!("summary {}", r.summary()));
                for d in &r.dropped {
                    resp.push(format!("dropped {d}"));
                }
                for n in &r.notes {
                    resp.push(format!("note {n}"));
                }
                resp
            }
        }
    }

    fn ingest(&mut self, rows: &[IngestRow]) -> Response {
        let svc = &self.service;
        let report = match svc.try_ingest_rows(rows) {
            Ok(report) => report,
            Err(crate::IngestRejected::Overloaded { in_flight }) => {
                // Shed: the writer queue is saturated. Typed refusal with
                // a retry hint; the session itself stays usable (reads
                // still answer from the pinned epoch vector).
                return ProtocolError::Overloaded { in_flight }.into();
            }
            Err(crate::IngestRejected::Persist(e)) => {
                // Nothing was published and nothing is durable; tell the
                // operator and the client the same story.
                svc.record_warning(format!("ingest not persisted: {e}"));
                return ProtocolError::Persist(e.to_string()).into();
            }
        };
        let mut resp = Response::ok(format!(
            "ingest seq {} rows {} new_rows {} rebuilt {}",
            report.seq,
            rows.len(),
            report.new_rows(),
            u8::from(report.rebuilt_any())
        ));
        // Satellite fix (PR 4): the rebuild fallback used to be recorded
        // and silently dropped by every caller — surface it to the client
        // *and* the operator log, per shard.
        for warning in report.fallback_warnings() {
            resp.push(format!("warn {warning}"));
            svc.record_warning(warning);
        }
        resp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AuditService;

    fn service() -> Arc<AuditService> {
        Arc::new(AuditService::tiny_synthetic(7))
    }

    fn sharded_service(n: usize) -> Arc<AuditService> {
        Arc::new(AuditService::tiny_synthetic_sharded(7, n))
    }

    #[test]
    fn session_pins_and_repins() {
        let svc = service();
        let mut s = Session::new(svc.clone());
        assert_eq!(s.greeting().head, "OK eba-serve 1 epoch 0");
        assert_eq!(
            s.handle(Command::Pin, vec![]).head,
            "OK epoch 0",
            "pin reports without changing"
        );
        // An ingest elsewhere publishes epoch 1; the session stays on 0.
        svc.ingest_rows(&[IngestRow {
            user: 1,
            patient: 10_000,
            day: Some(1),
        }])
        .unwrap();
        assert_eq!(s.handle(Command::Pin, vec![]).head, "OK epoch 0");
        assert_eq!(
            s.handle(Command::Seq, vec![]).head,
            "OK published 1 pinned 0"
        );
        assert_eq!(s.handle(Command::Repin, vec![]).head, "OK epoch 1");
    }

    #[test]
    fn truncated_listings_carry_an_explicit_more_marker() {
        let svc = service();
        let mut s = Session::new(svc.clone());
        let unexplained = |limit, after| Command::Unexplained { limit, after };
        // Unlimited listing: every row, no marker.
        let full = s.handle(unexplained(None, None), vec![]);
        let total = full.body.len();
        assert!(total > 2, "tiny world has several unexplained accesses");
        assert!(
            full.body.iter().all(|l| l.starts_with("lid ")),
            "no marker on a complete listing"
        );
        // Truncated listing: the cut is named, with the exact residue and
        // the cursor command that fetches the next page.
        let cut = s.handle(unexplained(Some(2), None), vec![]);
        assert_eq!(cut.body.len(), 4);
        assert_eq!(cut.body[2], format!("more {} rows not shown", total - 2));
        assert!(
            cut.body[3].starts_with("next UNEXPLAINED 2 AFTER "),
            "{}",
            cut.body[3]
        );
        // A limit at (or past) the full length adds no marker.
        let exact = s.handle(unexplained(Some(total), None), vec![]);
        assert_eq!(exact.body.len(), total);
        assert!(exact.body.iter().all(|l| l.starts_with("lid ")));
        // MISUSE caps its queue at ten: a deeper queue names the residue,
        // a shallower one stays marker-free.
        let misuse = s.handle(Command::Misuse { user: None }, vec![]);
        let suspects = misuse
            .body
            .iter()
            .filter(|l| l.starts_with("user "))
            .count();
        assert!(suspects <= 10);
        match misuse.body.last() {
            Some(l) if l.starts_with("more ") => {
                let n: usize = l
                    .strip_prefix("more ")
                    .and_then(|r| r.split_whitespace().next())
                    .and_then(|n| n.parse().ok())
                    .expect("marker names a count");
                assert!(n > 0);
                assert_eq!(suspects, 10, "marker only after a full page");
            }
            _ => assert_eq!(misuse.body.len(), suspects),
        }
    }

    #[test]
    fn pagination_cursors_walk_the_whole_listing_in_order() {
        let svc = service();
        let mut s = Session::new(svc);
        let full = s.handle(
            Command::Unexplained {
                limit: None,
                after: None,
            },
            vec![],
        );
        let total = full.body.len();
        // Follow the cursor page by page; the concatenation must equal
        // the unlimited listing byte for byte.
        let mut pages: Vec<String> = Vec::new();
        let mut after = None;
        loop {
            let page = s.handle(
                Command::Unexplained {
                    limit: Some(3),
                    after,
                },
                vec![],
            );
            assert_eq!(page.head, full.head, "every page reports full totals");
            let rows: Vec<&String> = page.body.iter().filter(|l| l.starts_with("lid ")).collect();
            assert!(rows.len() <= 3);
            pages.extend(rows.into_iter().cloned());
            match page
                .body
                .iter()
                .find_map(|l| l.strip_prefix("next UNEXPLAINED 3 AFTER "))
            {
                Some(rid) => after = Some(rid.parse().expect("cursor rid")),
                None => break,
            }
            assert!(pages.len() < total + 3, "cursor must terminate");
        }
        assert_eq!(pages, full.body);
        // A cursor past the last row is an empty page, not an error.
        let end = s.handle(
            Command::Unexplained {
                limit: Some(3),
                after: Some(u32::MAX),
            },
            vec![],
        );
        assert!(end.is_ok());
        assert!(end.body.is_empty(), "{:?}", end.body);
    }

    #[test]
    fn subscribe_parks_the_queue_and_rejects_a_second_registration() {
        let svc = service();
        let mut s = Session::new(svc.clone());
        let r = s.handle(
            Command::Subscribe {
                kind: crate::push::SubscriptionKind::Unexplained,
            },
            vec![],
        );
        assert!(
            r.head.starts_with("OK subscribed unexplained id "),
            "{}",
            r.head
        );
        assert_eq!(svc.subscriber_count(), 1);
        let again = s.handle(
            Command::Subscribe {
                kind: crate::push::SubscriptionKind::Misuse { threshold: 1 },
            },
            vec![],
        );
        assert!(again.head.starts_with("ERR bad-request "), "{}", again.head);
        // The listener collects the queue; an ingest then lands on it.
        let (id, rx) = s.take_subscription().expect("parked subscription");
        assert!(s.take_subscription().is_none(), "taken once");
        svc.ingest_rows(&[IngestRow {
            user: 1,
            patient: 10_000,
            day: Some(1),
        }])
        .unwrap();
        assert!(matches!(rx.try_recv(), Ok(Event::Unexplained { .. })));
        svc.unsubscribe(id);
        assert_eq!(svc.subscriber_count(), 0);
    }

    #[test]
    fn reads_answer_from_the_pinned_epoch() {
        let svc = service();
        let mut s = Session::new(svc.clone());
        let before = s.handle(Command::Metrics, vec![]);
        assert!(before.is_ok());
        let ingest = s.handle(
            Command::Ingest { count: 2 },
            vec![
                IngestRow {
                    user: 1,
                    patient: 10_000,
                    day: Some(2),
                },
                IngestRow {
                    user: 2,
                    patient: 10_001,
                    day: None,
                },
            ],
        );
        assert!(ingest.is_ok(), "{}", ingest.head);
        assert!(ingest.head.contains("rows 2"), "{}", ingest.head);
        assert!(ingest.head.contains("rebuilt 0"), "{}", ingest.head);
        // Still the old epoch: byte-identical metrics.
        assert_eq!(s.handle(Command::Metrics, vec![]), before);
        // After repinning the totals grew by the batch.
        s.handle(Command::Repin, vec![]);
        let after = s.handle(Command::Metrics, vec![]);
        assert_ne!(after, before);
        let total = |r: &Response| -> usize {
            r.body
                .iter()
                .find_map(|l| l.strip_prefix("anchor_total "))
                .unwrap()
                .parse()
                .unwrap()
        };
        assert_eq!(total(&after), total(&before) + 2);
    }

    #[test]
    fn sharded_session_answers_match_the_single_shard_session() {
        // The full protocol surface, differentially: every read command's
        // bytes at 4 shards equal the 1-shard session's.
        let mut single = Session::new(sharded_service(1));
        let mut sharded = Session::new(sharded_service(4));
        let cmds = [
            Command::Metrics,
            Command::Timeline,
            Command::Unexplained {
                limit: Some(25),
                after: None,
            },
            Command::Misuse { user: None },
            Command::Explain { lid: 1 },
        ];
        for cmd in cmds {
            assert_eq!(
                single.handle(cmd.clone(), vec![]),
                sharded.handle(cmd.clone(), vec![]),
                "{cmd:?} diverged between 1 and 4 shards"
            );
        }
    }

    #[test]
    fn shards_reports_partition_layout() {
        let svc = sharded_service(3);
        let mut s = Session::new(svc.clone());
        let r = s.handle(Command::Shards, vec![]);
        assert_eq!(r.head, "OK shards 3 seq 0 pinned 0");
        assert_eq!(r.body.len(), 3);
        let total: usize = r
            .body
            .iter()
            .map(|l| {
                l.split_whitespace()
                    .last()
                    .unwrap()
                    .parse::<usize>()
                    .unwrap()
            })
            .sum();
        assert_eq!(total, svc.sharded().load().global_log_len());
        // The pin holds the old layout while an ingest publishes.
        svc.ingest_rows(&[IngestRow {
            user: 1,
            patient: 10_000,
            day: Some(1),
        }])
        .unwrap();
        let r = s.handle(Command::Shards, vec![]);
        assert_eq!(r.head, "OK shards 3 seq 1 pinned 0");
    }

    #[test]
    fn explain_reports_missing_lids_as_not_found() {
        let svc = service();
        let mut s = Session::new(svc);
        let r = s.handle(Command::Explain { lid: 99_999_999 }, vec![]);
        assert!(r.head.starts_with("ERR not-found"), "{}", r.head);
    }

    #[test]
    fn volatile_service_reports_recovery_as_volatile() {
        let svc = service();
        let mut s = Session::new(svc);
        let r = s.handle(Command::Recovery, vec![]);
        assert_eq!(r.head, "OK recovery volatile");
        assert!(r.body.is_empty());
    }

    #[test]
    fn null_day_rows_land_in_the_overflow_bucket() {
        let svc = service();
        let mut s = Session::new(svc);
        let overflow_total = |r: &Response| -> usize {
            r.body
                .iter()
                .find_map(|l| l.strip_prefix("overflow total "))
                .map(|rest| rest.split_whitespace().next().unwrap().parse().unwrap())
                .unwrap()
        };
        let before = overflow_total(&s.handle(Command::Timeline, vec![]));
        s.handle(
            Command::Ingest { count: 2 },
            vec![
                IngestRow {
                    user: 1,
                    patient: 10_000,
                    day: None,
                },
                IngestRow {
                    user: 1,
                    patient: 10_001,
                    day: Some(9_999),
                },
            ],
        );
        s.handle(Command::Repin, vec![]);
        let after = overflow_total(&s.handle(Command::Timeline, vec![]));
        assert_eq!(after, before + 2);
    }
}
