//! `eba-serve` — the standalone audit server over a synthetic hospital.
//!
//! ```text
//! eba-serve [--addr HOST:PORT] [--scale tiny|small] [--seed N]
//!           [--shards N] [--pile FILE] [--fsync strict|relaxed]
//!           [--timeout SECS] [--max-conn N]
//! ```
//!
//! Binds the address (port 0 picks an ephemeral port), prints one
//! `listening on <addr>` line to stdout, and serves the line protocol
//! (see `eba_server::protocol`) until killed. Deployments with real CSV
//! data use `eba serve --data DIR` instead — same listener, same
//! protocol, loaded data.
//!
//! `--shards N` hash-partitions the access log by patient into N shards;
//! each `INGEST` refreshes the shards in parallel and sessions pin the
//! whole published epoch vector, so every answer stays byte-identical to
//! the single-shard server. Defaults to `EBA_SHARDS` (then
//! `EBA_TEST_SHARDS`), else 1.
//!
//! With `--pile FILE` acknowledged `INGEST` batches are durable: startup
//! recovers everything previously acknowledged over the same
//! seed/scale's base data, and `--fsync strict` (the default) fsyncs
//! each batch before its reply. `--timeout SECS` bounds idle sessions
//! (0 disables the deadline). `--max-conn N` caps concurrent sessions;
//! connections over the cap get a typed `ERR busy` greeting and a
//! close, never a silent drop (0 removes the cap).
//!
//! Dashboards subscribe to the push feed with `SUBSCRIBE UNEXPLAINED`
//! or `SUBSCRIBE MISUSE <threshold>`: the session switches into event
//! mode and receives typed `EVENT` frames as `INGEST` batches land.
//! Each subscriber's queue is bounded; a stalled dashboard is shed with
//! one `ERR slow-consumer` frame and never back-pressures the writer.

use eba_server::{AuditService, Server, ServerConfig};
use std::time::Duration;

fn main() {
    let mut addr = "127.0.0.1:4780".to_string();
    let mut scale = "tiny".to_string();
    let mut seed = 7u64;
    let mut shards = eba_server::default_shard_count();
    let mut pile: Option<String> = None;
    let mut fsync = "strict".to_string();
    let mut timeout_secs = 120u64;
    let mut max_conn = ServerConfig::default().max_connections;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().unwrap_or_else(|| usage("missing --addr value")),
            "--scale" => {
                scale = args
                    .next()
                    .unwrap_or_else(|| usage("missing --scale value"))
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage("missing --seed value"));
                seed = v
                    .parse()
                    .unwrap_or_else(|_| usage("--seed expects an integer"));
            }
            "--shards" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("missing --shards value"));
                shards = v
                    .parse()
                    .unwrap_or_else(|_| usage("--shards expects a positive count"));
                if shards == 0 {
                    usage("--shards expects a positive count");
                }
            }
            "--pile" => pile = Some(args.next().unwrap_or_else(|| usage("missing --pile value"))),
            "--fsync" => {
                fsync = args
                    .next()
                    .unwrap_or_else(|| usage("missing --fsync value"))
            }
            "--timeout" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("missing --timeout value"));
                timeout_secs = v
                    .parse()
                    .unwrap_or_else(|_| usage("--timeout expects seconds"));
            }
            "--max-conn" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("missing --max-conn value"));
                max_conn = v
                    .parse()
                    .unwrap_or_else(|_| usage("--max-conn expects a count (0: unlimited)"));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    let config = match scale.as_str() {
        "tiny" => eba_synth::SynthConfig::tiny(),
        "small" => eba_synth::SynthConfig::small(),
        other => usage(&format!("unknown scale `{other}`")),
    };
    let config = eba_synth::SynthConfig { seed, ..config };
    let policy = eba_relational::Durability::parse(&fsync)
        .unwrap_or_else(|| usage(&format!("--fsync expects strict|relaxed, got `{fsync}`")));

    eprintln!("eba-serve: generating {scale} hospital (seed {seed})...");
    let hospital = eba_synth::Hospital::generate(config);
    let service = match &pile {
        None => AuditService::from_hospital_sharded(hospital, shards),
        Some(path) => {
            let svc = AuditService::from_hospital_durable_sharded(
                hospital,
                std::path::Path::new(path),
                policy,
                shards,
            )
            .unwrap_or_else(|e| {
                eprintln!("error: cannot open durable store {path}: {e}");
                std::process::exit(1);
            });
            let report = svc.recovery_report().expect("durable service");
            eprintln!(
                "eba-serve: durable ({policy} fsync) pile {path}; {}",
                report.summary()
            );
            svc
        }
    };
    let log_len = service.sharded().load().global_log_len();
    eprintln!(
        "eba-serve: {} accesses, {} templates, {}-day window, {} shard(s)",
        log_len,
        service.explainer.templates().len(),
        service.days,
        service.shard_count()
    );
    let timeout = (timeout_secs > 0).then(|| Duration::from_secs(timeout_secs));
    let server_config = ServerConfig {
        read_timeout: timeout,
        write_timeout: timeout,
        max_connections: max_conn,
        ..ServerConfig::default()
    };
    let server = Server::spawn_with(service, &addr, server_config).unwrap_or_else(|e| {
        eprintln!("error: cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    // The machine-readable line drive-by clients wait for.
    println!("listening on {}", server.local_addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();
    server.join();
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: eba-serve [--addr HOST:PORT] [--scale tiny|small] [--seed N]\n\
         \x20                [--shards N] [--pile FILE] [--fsync strict|relaxed]\n\
         \x20                [--timeout SECS] [--max-conn N]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
