//! `eba-serve` — the standalone audit server over a synthetic hospital.
//!
//! ```text
//! eba-serve [--addr HOST:PORT] [--scale tiny|small] [--seed N]
//! ```
//!
//! Binds the address (port 0 picks an ephemeral port), prints one
//! `listening on <addr>` line to stdout, and serves the line protocol
//! (see `eba_server::protocol`) until killed. Deployments with real CSV
//! data use `eba serve --data DIR` instead — same listener, same
//! protocol, loaded data.

use eba_server::{AuditService, Server};

fn main() {
    let mut addr = "127.0.0.1:4780".to_string();
    let mut scale = "tiny".to_string();
    let mut seed = 7u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().unwrap_or_else(|| usage("missing --addr value")),
            "--scale" => {
                scale = args
                    .next()
                    .unwrap_or_else(|| usage("missing --scale value"))
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage("missing --seed value"));
                seed = v
                    .parse()
                    .unwrap_or_else(|_| usage("--seed expects an integer"));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    let config = match scale.as_str() {
        "tiny" => eba_synth::SynthConfig::tiny(),
        "small" => eba_synth::SynthConfig::small(),
        other => usage(&format!("unknown scale `{other}`")),
    };
    let config = eba_synth::SynthConfig { seed, ..config };

    eprintln!("eba-serve: generating {scale} hospital (seed {seed})...");
    let service = AuditService::from_hospital(eba_synth::Hospital::generate(config));
    let log_len = service.shared().load().db().table(service.spec.table).len();
    eprintln!(
        "eba-serve: {} accesses, {} templates, {}-day window",
        log_len,
        service.explainer.templates().len(),
        service.days
    );
    let server = Server::spawn(service, &addr).unwrap_or_else(|e| {
        eprintln!("error: cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    // The machine-readable line drive-by clients wait for.
    println!("listening on {}", server.local_addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();
    server.join();
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!("usage: eba-serve [--addr HOST:PORT] [--scale tiny|small] [--seed N]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
