//! Server-push subscriptions: `SUBSCRIBE` registrations, typed `EVENT`
//! frames, and the publish-time diff that feeds them.
//!
//! A session that issues `SUBSCRIBE` switches into event mode: the
//! server pushes one `EVENT` frame per matching publish (same dot-framed
//! shape as every reply, with an `EVENT` head instead of `OK`/`ERR`),
//! and the only command the session may still send is `QUIT`.
//!
//! Delivery is decoupled from the writer by a **bounded queue per
//! subscriber** ([`EVENT_QUEUE_CAP`] frames). The ingest path never
//! blocks on a subscriber: a queue that is full when a publish tries to
//! enqueue marks that subscriber shed — it receives whatever was already
//! queued, then a final `ERR slow-consumer` frame, and its connection
//! closes. A stalled compliance dashboard costs itself its feed; it can
//! never back-pressure the writer or the other subscribers.
//!
//! The diff itself is O(delta): the maintained [`Maintained`] sets of
//! the service's pinned suite are materialized per epoch, so "what
//! became unexplained" is one `RowSet::difference` between the epoch
//! before and after the ingest — no suite re-evaluation on the publish
//! path. Misuse crossings piggyback on the same diff: per-user
//! unexplained tallies are only counted when a misuse subscriber exists,
//! and only for users who gained a row in this publish.
//!
//! Operator database reloads ([`AuditService::replace_database`]) do not
//! publish events: a wholesale replacement is not a stream of new
//! accesses, and diffing two unrelated logs would alert on noise.

use crate::protocol::Response;
use crate::AuditService;
use eba_relational::{EpochVec, Value};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};

/// Bound on one subscriber's undelivered `EVENT` frames. Publishes are
/// human-rate (acknowledged ingests), so a healthy dashboard sits at
/// depth 0–1; a subscriber 64 frames behind is not reading its socket.
pub const EVENT_QUEUE_CAP: usize = 64;

/// Cap on the row detail lines carried by one `EVENT unexplained` frame;
/// larger deltas summarize the residue in a `more` line (the full set is
/// one `UNEXPLAINED` query away on a regular session).
pub const EVENT_ROWS_CAP: usize = 16;

/// What a session subscribed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubscriptionKind {
    /// `SUBSCRIBE UNEXPLAINED` — an event per publish that adds at least
    /// one unexplained access.
    Unexplained,
    /// `SUBSCRIBE MISUSE <threshold>` — an event per user whose
    /// unexplained-access count crosses `threshold` (from below) in a
    /// publish.
    Misuse {
        /// The crossing threshold (≥ 1).
        threshold: usize,
    },
}

/// One pushed notification, pre-rendered at publish time against the
/// epoch it describes (subscribers never chase a moving pool).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// New unexplained accesses appeared in a publish.
    Unexplained {
        /// The published epoch seq.
        seq: u64,
        /// Unexplained rows added by this publish.
        new: usize,
        /// Total unexplained rows at this epoch.
        total: usize,
        /// Up to [`EVENT_ROWS_CAP`] rendered `lid … user … patient …`
        /// detail lines.
        rows: Vec<String>,
    },
    /// A user's unexplained count crossed a subscriber's threshold.
    Misuse {
        /// The published epoch seq.
        seq: u64,
        /// The crossing user (rendered).
        user: String,
        /// The user's unexplained count at this epoch.
        unexplained: usize,
        /// The subscriber's threshold.
        threshold: usize,
    },
}

impl Event {
    /// The dot-framed wire form: an `EVENT …` head plus detail lines.
    pub fn response(&self) -> Response {
        match self {
            Event::Unexplained {
                seq,
                new,
                total,
                rows,
            } => {
                let mut resp = Response {
                    head: format!("EVENT unexplained seq {seq} new {new} total {total}"),
                    body: rows.clone(),
                };
                if *new > rows.len() {
                    resp.push(format!("more {} rows not shown", new - rows.len()));
                }
                resp
            }
            Event::Misuse {
                seq,
                user,
                unexplained,
                threshold,
            } => Response {
                head: format!(
                    "EVENT misuse seq {seq} user {user} unexplained {unexplained} \
                     threshold {threshold}"
                ),
                body: Vec::new(),
            },
        }
    }
}

/// One registered subscriber: its queue's sending half lives here, the
/// receiving half with its session thread.
pub(crate) struct Subscriber {
    pub(crate) id: u64,
    pub(crate) kind: SubscriptionKind,
    tx: SyncSender<Event>,
}

impl AuditService {
    /// Registers a subscription and returns its id plus the bounded
    /// event queue the session thread drains. Dropping the receiver (or
    /// calling [`AuditService::unsubscribe`]) ends delivery.
    pub fn subscribe(&self, kind: SubscriptionKind) -> (u64, Receiver<Event>) {
        let (tx, rx) = sync_channel(EVENT_QUEUE_CAP);
        let id = self.next_subscriber.fetch_add(1, Ordering::SeqCst);
        crate::lock_plain(&self.subscribers).push(Subscriber { id, kind, tx });
        (id, rx)
    }

    /// Deregisters a subscription (idempotent; unknown ids are a no-op).
    pub fn unsubscribe(&self, id: u64) {
        crate::lock_plain(&self.subscribers).retain(|s| s.id != id);
    }

    /// Live subscriptions.
    pub fn subscriber_count(&self) -> usize {
        crate::lock_plain(&self.subscribers).len()
    }

    /// Subscribers shed as slow consumers since startup.
    pub fn shed_subscriber_count(&self) -> u64 {
        self.shed_subscribers.load(Ordering::SeqCst)
    }

    /// Whether any subscriber exists — the publish path's cheap gate, so
    /// a subscriber-free server pays nothing per ingest.
    pub(crate) fn has_subscribers(&self) -> bool {
        !crate::lock_plain(&self.subscribers).is_empty()
    }

    /// Diffs the maintained unexplained set across one publish and
    /// enqueues the matching events. Called from the ingest path under
    /// the writer-state lock (publishes are serialized, so every diff is
    /// against the immediately preceding epoch — no event is double-
    /// counted and none is skipped). A subscriber whose queue is full is
    /// shed here: its sender is dropped, so after draining the backlog
    /// its session observes disconnection and closes with a typed error.
    pub(crate) fn publish_events(&self, before: &EpochVec, after: &EpochVec) {
        let pin = self.pin_id;
        let (Some(bm), Some(am)) = (before.maintained(pin), after.maintained(pin)) else {
            return;
        };
        let fresh = am.unexplained.difference(&bm.unexplained);
        if fresh.is_empty() {
            return;
        }
        let want_misuse = crate::lock_plain(&self.subscribers)
            .iter()
            .any(|s| matches!(s.kind, SubscriptionKind::Misuse { .. }));

        // The per-publish detail lines, rendered once and shared.
        let mut rows = Vec::with_capacity(fresh.len().min(EVENT_ROWS_CAP));
        let mut affected: HashSet<Value> = HashSet::new();
        let (user_col, patient_col, lid_col) = (self.cols.user, self.cols.patient, self.cols.lid);
        for global in fresh.iter() {
            let Some((shard, rid)) = after.locate(global) else {
                continue;
            };
            let db = after.shards()[shard].db();
            let row = db.table(self.spec.table).row(rid);
            if want_misuse {
                affected.insert(row[user_col]);
            }
            if rows.len() < EVENT_ROWS_CAP {
                rows.push(format!(
                    "lid {} user {} patient {}",
                    row[lid_col].display(db.pool()),
                    row[user_col].display(db.pool()),
                    row[patient_col].display(db.pool())
                ));
            } else if !want_misuse {
                break;
            }
        }
        let unexplained_event = Event::Unexplained {
            seq: after.seq(),
            new: fresh.len(),
            total: am.unexplained.len(),
            rows,
        };

        // Per-user unexplained tallies, before and after — counted only
        // for users who gained a row, and only when someone is watching.
        let crossings: Vec<(Value, usize, usize)> = if want_misuse {
            let tally = |epochs: &EpochVec| -> HashMap<Value, usize> {
                let m = epochs.maintained(pin).expect("checked above");
                let mut counts: HashMap<Value, usize> = HashMap::new();
                for global in m.unexplained.iter() {
                    let Some((shard, rid)) = epochs.locate(global) else {
                        continue;
                    };
                    let user =
                        epochs.shards()[shard].db().table(self.spec.table).row(rid)[user_col];
                    if affected.contains(&user) {
                        *counts.entry(user).or_default() += 1;
                    }
                }
                counts
            };
            let before_counts = tally(before);
            let after_counts = tally(after);
            let pool = after.shards()[0].db().pool();
            let mut out: Vec<(Value, usize, usize)> = affected
                .iter()
                .map(|u| {
                    (
                        *u,
                        before_counts.get(u).copied().unwrap_or(0),
                        after_counts.get(u).copied().unwrap_or(0),
                    )
                })
                .collect();
            // Deterministic event order for the wire.
            out.sort_by_key(|(u, _, _)| u.display(pool).to_string());
            out
        } else {
            Vec::new()
        };

        let seq = after.seq();
        let pool = after.shards()[0].db().pool();
        let mut shed: Vec<u64> = Vec::new();
        let mut subs = crate::lock_plain(&self.subscribers);
        subs.retain(|s| {
            let deliver = |ev: Event| s.tx.try_send(ev);
            let result = match s.kind {
                SubscriptionKind::Unexplained => deliver(unexplained_event.clone()),
                SubscriptionKind::Misuse { threshold } => crossings
                    .iter()
                    .filter(|(_, before_n, after_n)| *before_n < threshold && *after_n >= threshold)
                    .try_for_each(|(user, _, after_n)| {
                        deliver(Event::Misuse {
                            seq,
                            user: user.display(pool).to_string(),
                            unexplained: *after_n,
                            threshold,
                        })
                    }),
            };
            match result {
                Ok(()) => true,
                // Full: the subscriber stopped draining — shed it (its
                // queued backlog still delivers, then it sees EOF-of-
                // events and closes). Disconnected: it already left.
                Err(TrySendError::Full(_)) => {
                    shed.push(s.id);
                    false
                }
                Err(TrySendError::Disconnected(_)) => false,
            }
        });
        drop(subs);
        for id in shed {
            let n = self.shed_subscribers.fetch_add(1, Ordering::SeqCst) + 1;
            self.record_warning(format!(
                "subscriber {id} shed: event queue full ({EVENT_QUEUE_CAP} frames \
                 undelivered — slow consumer); {n} shed so far"
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::IngestRow;

    fn row(user: i64, patient: i64) -> IngestRow {
        IngestRow {
            user,
            patient,
            day: Some(1),
        }
    }

    #[test]
    fn event_frames_render_with_event_heads() {
        let e = Event::Unexplained {
            seq: 3,
            new: 2,
            total: 40,
            rows: vec!["lid 7 user 1 patient 9".into()],
        };
        let r = e.response();
        assert_eq!(r.head, "EVENT unexplained seq 3 new 2 total 40");
        assert_eq!(r.body.len(), 2, "one detail line plus the residue");
        assert_eq!(r.body[1], "more 1 rows not shown");
        let m = Event::Misuse {
            seq: 5,
            user: "12".into(),
            unexplained: 4,
            threshold: 3,
        };
        assert_eq!(
            m.response().head,
            "EVENT misuse seq 5 user 12 unexplained 4 threshold 3"
        );
    }

    #[test]
    fn publish_delivers_one_event_per_matching_ingest() {
        let svc = crate::AuditService::tiny_synthetic(11);
        let (id, rx) = svc.subscribe(SubscriptionKind::Unexplained);
        assert_eq!(svc.subscriber_count(), 1);
        // Never-before-seen user/patient pairs are unexplained by
        // construction: no appointment, visit, or document links them.
        svc.ingest_rows(&[row(9_001, 10_000), row(9_002, 10_001)])
            .unwrap();
        let ev = rx.try_recv().expect("one event for the publish");
        match &ev {
            Event::Unexplained { seq, new, rows, .. } => {
                assert_eq!(*seq, 1);
                assert_eq!(*new, 2);
                assert_eq!(rows.len(), 2);
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert!(rx.try_recv().is_err(), "exactly one event per publish");
        svc.ingest_rows(&[row(9_003, 10_002)]).unwrap();
        assert!(matches!(
            rx.try_recv(),
            Ok(Event::Unexplained { seq: 2, new: 1, .. })
        ));
        svc.unsubscribe(id);
        assert_eq!(svc.subscriber_count(), 0);
    }

    #[test]
    fn misuse_events_fire_once_per_threshold_crossing() {
        let svc = crate::AuditService::tiny_synthetic(12);
        let (_, rx) = svc.subscribe(SubscriptionKind::Misuse { threshold: 2 });
        // First unexplained access by user 9001: below threshold, silent.
        svc.ingest_rows(&[row(9_001, 10_000)]).unwrap();
        assert!(rx.try_recv().is_err(), "below the threshold");
        // Second: crosses 2.
        svc.ingest_rows(&[row(9_001, 10_001)]).unwrap();
        match rx.try_recv().expect("crossing event") {
            Event::Misuse {
                user,
                unexplained,
                threshold,
                ..
            } => {
                assert_eq!(user, "9001");
                assert_eq!(unexplained, 2);
                assert_eq!(threshold, 2);
            }
            other => panic!("unexpected event {other:?}"),
        }
        // Third: already past the threshold — no re-fire.
        svc.ingest_rows(&[row(9_001, 10_002)]).unwrap();
        assert!(rx.try_recv().is_err(), "no event past the crossing");
    }

    #[test]
    fn slow_subscriber_is_shed_without_stalling_ingest() {
        let svc = crate::AuditService::tiny_synthetic(13);
        let (_, rx) = svc.subscribe(SubscriptionKind::Unexplained);
        // Never drain: every publish queues one event until the cap.
        for i in 0..(EVENT_QUEUE_CAP + 2) as i64 {
            svc.ingest_rows(&[row(1, 20_000 + i)]).unwrap();
        }
        assert_eq!(
            svc.subscriber_count(),
            0,
            "the overflowing subscriber was shed"
        );
        assert_eq!(svc.shed_subscriber_count(), 1);
        assert!(svc.warnings().iter().any(|w| w.contains("slow consumer")));
        // The backlog (a full queue) still drains, then disconnects.
        let mut drained = 0;
        while rx.try_recv().is_ok() {
            drained += 1;
        }
        assert_eq!(drained, EVENT_QUEUE_CAP);
        // Ingest never stalled: every batch published.
        assert_eq!(svc.sharded().seq(), (EVENT_QUEUE_CAP + 2) as u64);
    }
}
