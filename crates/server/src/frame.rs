//! Bounded line reading for inbound request frames.
//!
//! `BufRead::read_line` grows its `String` without limit, so one peer
//! holding its newline back could make a session buffer an arbitrarily
//! large line — a remote OOM with no authentication required. Every
//! session read goes through [`BoundedLineReader`] instead: a line that
//! exceeds the configured cap is reported as [`FrameLine::TooLong`]
//! without ever buffering more than the cap (plus one `BufRead` chunk),
//! and the listener answers `ERR toolong` and closes the connection.

use std::io::BufRead;

/// Outcome of one bounded line read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameLine {
    /// A line was read into the caller's buffer (terminator stripped).
    /// A final unterminated line before EOF is also delivered this way,
    /// matching `read_line`'s behaviour.
    Line,
    /// Clean EOF: the stream ended before any byte of a new line.
    Eof,
    /// The line exceeded the cap. The overlong tail is *not* consumed —
    /// the caller is expected to reply and close, not resynchronize.
    TooLong,
}

/// A line reader that never buffers more than `max_line` bytes per line.
pub struct BoundedLineReader<R> {
    inner: R,
    max_line: usize,
}

impl<R: BufRead> BoundedLineReader<R> {
    /// Wraps `inner`, capping every line at `max_line` bytes (terminator
    /// excluded). A cap of 0 means unlimited.
    pub fn new(inner: R, max_line: usize) -> BoundedLineReader<R> {
        BoundedLineReader { inner, max_line }
    }

    /// The underlying reader (the `INGEST` row loop shares one reader
    /// between the command loop and the batch loop).
    pub fn get_mut(&mut self) -> &mut R {
        &mut self.inner
    }

    /// Reads one line into `line` (cleared first, `\n`/`\r\n` stripped).
    /// I/O errors — including an expired socket read deadline — surface
    /// as `Err` exactly like `read_line`'s.
    pub fn read_line(&mut self, line: &mut String) -> std::io::Result<FrameLine> {
        line.clear();
        let mut buf: Vec<u8> = Vec::new();
        loop {
            let (found_at, chunk_len) = {
                let chunk = match self.inner.fill_buf() {
                    Ok(chunk) => chunk,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                };
                if chunk.is_empty() {
                    // EOF: clean between lines, or a final unterminated line.
                    if buf.is_empty() {
                        return Ok(FrameLine::Eof);
                    }
                    break;
                }
                let found_at = chunk.iter().position(|&b| b == b'\n');
                let keep = found_at.unwrap_or(chunk.len());
                if self.max_line > 0 && buf.len() + keep > self.max_line {
                    return Ok(FrameLine::TooLong);
                }
                buf.extend_from_slice(&chunk[..keep]);
                (found_at, chunk.len())
            };
            match found_at {
                Some(i) => {
                    self.inner.consume(i + 1);
                    break;
                }
                None => self.inner.consume(chunk_len),
            }
        }
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
        // Lossy: a stray non-UTF-8 byte becomes a typed parse error at
        // the command layer instead of a silently dropped connection.
        *line = String::from_utf8_lossy(&buf).into_owned();
        Ok(FrameLine::Line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn reader(bytes: &[u8], cap: usize) -> BoundedLineReader<BufReader<&[u8]>> {
        // A 4-byte BufReader forces multi-chunk accumulation, so the cap
        // logic is exercised across fill_buf boundaries too.
        BoundedLineReader::new(BufReader::with_capacity(4, bytes), cap)
    }

    #[test]
    fn lines_within_the_cap_round_trip() {
        let mut r = reader(b"PING\r\nSEQ\nlast-no-newline", 64);
        let mut line = String::new();
        assert_eq!(r.read_line(&mut line).unwrap(), FrameLine::Line);
        assert_eq!(line, "PING");
        assert_eq!(r.read_line(&mut line).unwrap(), FrameLine::Line);
        assert_eq!(line, "SEQ");
        assert_eq!(r.read_line(&mut line).unwrap(), FrameLine::Line);
        assert_eq!(line, "last-no-newline", "unterminated tail still delivered");
        assert_eq!(r.read_line(&mut line).unwrap(), FrameLine::Eof);
        assert_eq!(r.read_line(&mut line).unwrap(), FrameLine::Eof, "sticky");
    }

    #[test]
    fn a_line_at_the_cap_passes_and_one_over_does_not() {
        let mut line = String::new();
        let mut at = reader(b"12345678\n", 8);
        assert_eq!(at.read_line(&mut line).unwrap(), FrameLine::Line);
        assert_eq!(
            line, "12345678",
            "terminator does not count against the cap"
        );
        let mut over = reader(b"123456789\n", 8);
        assert_eq!(over.read_line(&mut line).unwrap(), FrameLine::TooLong);
        assert!(line.is_empty(), "nothing delivered for an overlong line");
    }

    #[test]
    fn overlong_detection_never_buffers_past_the_cap() {
        // 1 MiB line against a 16-byte cap: detection must trip within the
        // first chunks, long before the line is fully read.
        let big = vec![b'x'; 1 << 20];
        let mut r = reader(&big, 16);
        let mut line = String::new();
        assert_eq!(r.read_line(&mut line).unwrap(), FrameLine::TooLong);
    }

    #[test]
    fn zero_cap_means_unlimited() {
        let long = format!("{}\n", "y".repeat(100_000));
        let mut r = reader(long.as_bytes(), 0);
        let mut line = String::new();
        assert_eq!(r.read_line(&mut line).unwrap(), FrameLine::Line);
        assert_eq!(line.len(), 100_000);
    }

    #[test]
    fn non_utf8_bytes_degrade_lossily_not_fatally() {
        let mut r = reader(b"PI\xffNG\n", 64);
        let mut line = String::new();
        assert_eq!(r.read_line(&mut line).unwrap(), FrameLine::Line);
        assert!(line.starts_with("PI"), "{line}");
        assert!(line.ends_with("NG"), "{line}");
    }
}
